//! Per-user biometric profiles.
//!
//! Each simulated participant is a deterministic function of `(user_id,
//! seed)`. The parameter ranges follow the paper's cohort (§VI-A: ages
//! 20–27, heights 1.55–1.80 m, weights 40–85 kg) and standard
//! anthropometric ratios (Drillis & Contini segment proportions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which hand the user favours for single-arm gestures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Handedness {
    /// Right-handed (about 90 % of users).
    Right,
    /// Left-handed.
    Left,
}

/// Biometric and behavioural parameters of one simulated user.
///
/// All lengths are metres and all times seconds. The *behavioural*
/// parameters (speed, range of motion, timing skew, tremor, swivel, bias)
/// are what makes the same gesture look different across users in radar
/// point clouds — they are the signal GesturePrint's user identification
/// learns.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Stable user identifier (also the class label for identification).
    pub user_id: usize,
    /// Standing height (m), 1.55–1.80 in the paper's cohort.
    pub height: f64,
    /// Shoulder height above ground (≈ 0.818 × height).
    pub shoulder_height: f64,
    /// Shoulder half-width (m).
    pub shoulder_half_width: f64,
    /// Upper-arm (shoulder→elbow) length (m), ≈ 0.186 × height.
    pub upper_arm: f64,
    /// Forearm (elbow→wrist) length (m), ≈ 0.146 × height.
    pub forearm: f64,
    /// Hand length (wrist→fingertip) (m), ≈ 0.108 × height.
    pub hand: f64,
    /// Multiplier on gesture execution speed (1.0 = nominal).
    pub speed_factor: f64,
    /// Multiplier on motion amplitude (range of motion).
    pub rom_scale: f64,
    /// Additional anisotropic lateral (x) amplitude scaling — some users
    /// sweep wider, some keep gestures narrow (paper Fig. 2 observation).
    pub lateral_rom: f64,
    /// Habitual lateral offset of gesture centre (m).
    pub lateral_bias: f64,
    /// Habitual vertical offset of gesture centre (m).
    pub vertical_bias: f64,
    /// Exponent warping normalised gesture time (ease-in/ease-out habit);
    /// 1.0 = uniform pacing.
    pub timing_gamma: f64,
    /// Physiological tremor amplitude (m).
    pub tremor_amplitude: f64,
    /// Tremor frequency (Hz), typically 8–12.
    pub tremor_frequency: f64,
    /// Elbow swivel angle around the shoulder–wrist axis (rad); determines
    /// whether the elbow hangs low or flares out.
    pub elbow_swivel: f64,
    /// Dominant hand.
    pub handedness: Handedness,
    /// Small idle sway amplitude of the torso (m).
    pub sway_amplitude: f64,
    /// Habitual distance of the gesture plane from the body: positive
    /// values mean the user gestures closer to the radar (m).
    pub depth_bias: f64,
    /// Relative reflectivity of the user's arm/hand (hand size, sleeve
    /// material); scales scatterer RCS.
    pub rcs_scale: f64,
}

impl UserProfile {
    /// Generates the profile of user `user_id` under the experiment master
    /// `seed`. The same `(user_id, seed)` pair always yields the same
    /// profile, and different users get independent parameter draws.
    pub fn generate(user_id: usize, seed: u64) -> Self {
        // Mix the user id into the stream so ids are decorrelated even for
        // adjacent seeds.
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(user_id as u64 ^ 0xD1B5_4A32_D192_ED03),
        );
        let height = rng.gen_range(1.55..1.80);
        Self::from_rng(user_id, height, &mut rng)
    }

    /// Generates a user with an explicit height; used by the preliminary
    /// study (paper §III) which pairs two users of near-identical body
    /// shape (≈1.60 m) to show behavioural — not anatomical — differences
    /// drive identifiability.
    pub fn generate_with_height(user_id: usize, seed: u64, height: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(user_id as u64 ^ 0xD1B5_4A32_D192_ED03),
        );
        let _ = rng.gen_range(0.0..1.0); // keep stream aligned with generate()
        Self::from_rng(user_id, height, &mut rng)
    }

    fn from_rng(user_id: usize, height: f64, rng: &mut StdRng) -> Self {
        UserProfile {
            user_id,
            height,
            shoulder_height: 0.818 * height + rng.gen_range(-0.01..0.01),
            shoulder_half_width: 0.129 * height + rng.gen_range(-0.01..0.01),
            upper_arm: 0.186 * height * rng.gen_range(0.96..1.04),
            forearm: 0.146 * height * rng.gen_range(0.96..1.04),
            hand: 0.108 * height * rng.gen_range(0.95..1.05),
            speed_factor: rng.gen_range(0.80..1.18),
            rom_scale: rng.gen_range(0.82..1.18),
            lateral_rom: rng.gen_range(0.85..1.15),
            lateral_bias: rng.gen_range(-0.06..0.06),
            vertical_bias: rng.gen_range(-0.05..0.05),
            timing_gamma: rng.gen_range(0.72..1.38),
            tremor_amplitude: rng.gen_range(0.001..0.005),
            tremor_frequency: rng.gen_range(8.0..12.0),
            elbow_swivel: rng.gen_range(-0.5..0.7),
            handedness: if rng.gen_bool(0.1) {
                Handedness::Left
            } else {
                Handedness::Right
            },
            sway_amplitude: rng.gen_range(0.002..0.008),
            depth_bias: rng.gen_range(-0.09..0.09),
            rcs_scale: rng.gen_range(0.75..1.30),
        }
    }

    /// Full arm reach: shoulder to fingertip with the arm extended.
    pub fn reach(&self) -> f64 {
        self.upper_arm + self.forearm + self.hand
    }

    /// Shoulder position offsets in the body frame (±x for right/left).
    pub fn shoulder_offset(&self, right: bool) -> f64 {
        if right {
            self.shoulder_half_width
        } else {
            -self.shoulder_half_width
        }
    }

    /// Applies the user's habitual time-warp to a normalised phase
    /// `t ∈ [0, 1]`.
    pub fn warp_phase(&self, t: f64) -> f64 {
        t.clamp(0.0, 1.0).powf(self.timing_gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = UserProfile::generate(5, 99);
        let b = UserProfile::generate(5, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_users_differ() {
        let a = UserProfile::generate(0, 42);
        let b = UserProfile::generate(1, 42);
        assert_ne!(a, b);
        assert!((a.speed_factor - b.speed_factor).abs() > 1e-6);
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = UserProfile::generate(0, 1);
        let b = UserProfile::generate(0, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn heights_in_cohort_range() {
        for id in 0..50 {
            let p = UserProfile::generate(id, 7);
            assert!((1.55..1.80).contains(&p.height), "height {}", p.height);
            assert!(p.shoulder_height < p.height);
            assert!(p.reach() > 0.3 && p.reach() < 0.9);
        }
    }

    #[test]
    fn explicit_height_respected() {
        let p = UserProfile::generate_with_height(0, 3, 1.60);
        assert_eq!(p.height, 1.60);
        let q = UserProfile::generate_with_height(1, 3, 1.60);
        assert_eq!(q.height, 1.60);
        // Same height, but behaviour differs — the §III twin-user setup.
        assert!((p.speed_factor - q.speed_factor).abs() > 1e-6);
    }

    #[test]
    fn warp_phase_is_monotone_and_bounded() {
        let p = UserProfile::generate(2, 11);
        let mut prev = 0.0;
        for i in 0..=20 {
            let t = i as f64 / 20.0;
            let w = p.warp_phase(t);
            assert!((0.0..=1.0).contains(&w));
            assert!(w >= prev - 1e-12);
            prev = w;
        }
        assert_eq!(p.warp_phase(0.0), 0.0);
        assert!((p.warp_phase(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shoulder_offsets_are_mirrored() {
        let p = UserProfile::generate(0, 5);
        assert_eq!(p.shoulder_offset(true), -p.shoulder_offset(false));
    }

    #[test]
    fn mostly_right_handed() {
        let right = (0..100)
            .filter(|&id| UserProfile::generate(id, 13).handedness == Handedness::Right)
            .count();
        assert!(right >= 80, "expected ~90% right-handed, got {right}/100");
    }
}
