//! Keyframe paths: the declarative language gestures are defined in.
//!
//! A [`HandPath`] is a sequence of `(time, offset)` keyframes describing
//! where the wrist travels relative to the shoulder, in *reach units*
//! (multiples of the user's arm reach) so one definition fits every body
//! size. Paths are interpolated with a centripetal-flavoured Catmull–Rom
//! spline for smooth, natural motion through the keyframes.
//!
//! The gesture coordinate convention (body frame):
//! * `+x` — to the user's right (the radar's left; mirrored on mapping),
//! * `+y` — forward, toward the radar,
//! * `+z` — up.

use gp_pointcloud::Vec3;

/// One control point of a hand path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Keyframe {
    /// Normalised time in `[0, 1]`.
    pub t: f64,
    /// Wrist offset from the shoulder in reach units.
    pub offset: Vec3,
}

impl Keyframe {
    /// Creates a keyframe.
    pub const fn new(t: f64, x: f64, y: f64, z: f64) -> Self {
        Keyframe {
            t,
            offset: Vec3::new(x, y, z),
        }
    }
}

/// A smooth wrist trajectory defined by keyframes.
#[derive(Debug, Clone, PartialEq)]
pub struct HandPath {
    keyframes: Vec<Keyframe>,
}

impl HandPath {
    /// Builds a path from keyframes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two keyframes are given or times are not
    /// strictly increasing within `[0, 1]`.
    pub fn new(keyframes: Vec<Keyframe>) -> Self {
        assert!(keyframes.len() >= 2, "a path needs at least two keyframes");
        for w in keyframes.windows(2) {
            assert!(
                w[1].t > w[0].t,
                "keyframe times must be strictly increasing: {} then {}",
                w[0].t,
                w[1].t
            );
        }
        assert!(
            keyframes.first().expect("non-empty").t >= 0.0
                && keyframes.last().expect("non-empty").t <= 1.0,
            "keyframe times must lie in [0, 1]"
        );
        HandPath { keyframes }
    }

    /// Convenience constructor from `(t, x, y, z)` tuples.
    pub fn from_tuples(points: &[(f64, f64, f64, f64)]) -> Self {
        HandPath::new(
            points
                .iter()
                .map(|&(t, x, y, z)| Keyframe::new(t, x, y, z))
                .collect(),
        )
    }

    /// The keyframes defining this path.
    pub fn keyframes(&self) -> &[Keyframe] {
        &self.keyframes
    }

    /// Samples the wrist offset at normalised phase `t ∈ [0, 1]` using
    /// Catmull–Rom interpolation (endpoints clamped).
    pub fn sample(&self, t: f64) -> Vec3 {
        let t = t.clamp(
            self.keyframes.first().expect("non-empty").t,
            self.keyframes.last().expect("non-empty").t,
        );
        // Find segment [i, i+1] containing t.
        let n = self.keyframes.len();
        let mut i = 0;
        while i + 2 < n && self.keyframes[i + 1].t < t {
            i += 1;
        }
        let k1 = self.keyframes[i];
        let k2 = self.keyframes[i + 1];
        let k0 = if i == 0 { k1 } else { self.keyframes[i - 1] };
        let k3 = if i + 2 >= n {
            k2
        } else {
            self.keyframes[i + 2]
        };
        let span = (k2.t - k1.t).max(1e-9);
        let u = ((t - k1.t) / span).clamp(0.0, 1.0);
        catmull_rom(k0.offset, k1.offset, k2.offset, k3.offset, u)
    }

    /// Returns a copy with every offset transformed by `f`.
    pub fn map_offsets<F: Fn(Vec3) -> Vec3>(&self, f: F) -> HandPath {
        HandPath {
            keyframes: self
                .keyframes
                .iter()
                .map(|k| Keyframe {
                    t: k.t,
                    offset: f(k.offset),
                })
                .collect(),
        }
    }

    /// Returns a mirrored copy (x → −x), used to derive left-hand paths
    /// for symmetric bimanual gestures and left-handed users.
    pub fn mirrored(&self) -> HandPath {
        self.map_offsets(|o| Vec3::new(-o.x, o.y, o.z))
    }

    /// Approximate path length in reach units (polyline over `steps`
    /// samples).
    pub fn arc_length(&self, steps: usize) -> f64 {
        let steps = steps.max(1);
        let mut len = 0.0;
        let mut prev = self.sample(0.0);
        for s in 1..=steps {
            let cur = self.sample(s as f64 / steps as f64);
            len += prev.distance(cur);
            prev = cur;
        }
        len
    }
}

/// Standard (uniform) Catmull–Rom spline through `p1`..`p2` with
/// neighbours `p0`, `p3`, at local parameter `u ∈ [0, 1]`.
fn catmull_rom(p0: Vec3, p1: Vec3, p2: Vec3, p3: Vec3, u: f64) -> Vec3 {
    let u2 = u * u;
    let u3 = u2 * u;
    (p1 * 2.0
        + (p2 - p0) * u
        + (p0 * 2.0 - p1 * 5.0 + p2 * 4.0 - p3) * u2
        + (p1 * 3.0 - p0 - p2 * 3.0 + p3) * u3)
        * 0.5
}

/// The neutral rest offset: hand hanging by the hip, slightly forward.
/// In reach units relative to the shoulder.
pub const REST_OFFSET: Vec3 = Vec3::new(0.05, 0.12, -0.92);

/// Builders for common path primitives; gesture tables compose these.
pub mod primitives {
    use super::*;

    /// Hold at `offset` for the whole phase (used for the off hand).
    pub fn hold(offset: Vec3) -> HandPath {
        HandPath::new(vec![
            Keyframe { t: 0.0, offset },
            Keyframe { t: 1.0, offset },
        ])
    }

    /// Rest → target → rest, pausing briefly at the target.
    pub fn out_and_back(target: Vec3) -> HandPath {
        HandPath::new(vec![
            Keyframe {
                t: 0.0,
                offset: REST_OFFSET,
            },
            Keyframe {
                t: 0.40,
                offset: target,
            },
            Keyframe {
                t: 0.48,
                offset: target,
            },
            Keyframe {
                t: 1.0,
                offset: REST_OFFSET,
            },
        ])
    }

    /// Rest → `a` → `b` → rest (a swipe through the body frame).
    pub fn swipe(a: Vec3, b: Vec3) -> HandPath {
        HandPath::new(vec![
            Keyframe {
                t: 0.0,
                offset: REST_OFFSET,
            },
            Keyframe { t: 0.30, offset: a },
            Keyframe { t: 0.62, offset: b },
            Keyframe {
                t: 1.0,
                offset: REST_OFFSET,
            },
        ])
    }

    /// A full circle of radius `r` in the frontal (x–z) plane centred at
    /// `center`, clockwise when `cw` (as seen by the user).
    pub fn frontal_circle(center: Vec3, r: f64, cw: bool) -> HandPath {
        circle(center, r, cw, |ang| {
            Vec3::new(ang.cos() * r, 0.0, ang.sin() * r)
        })
    }

    /// A full circle of radius `r` in the sagittal (y–z) plane centred at
    /// `center` (wheel-like forward rolling motion).
    pub fn sagittal_circle(center: Vec3, r: f64, cw: bool) -> HandPath {
        circle(center, r, cw, |ang| {
            Vec3::new(0.0, ang.cos() * r, ang.sin() * r)
        })
    }

    fn circle<F: Fn(f64) -> Vec3>(center: Vec3, _r: f64, cw: bool, point: F) -> HandPath {
        let mut keyframes = vec![Keyframe {
            t: 0.0,
            offset: REST_OFFSET,
        }];
        let n = 8;
        for k in 0..=n {
            let ang =
                2.0 * std::f64::consts::PI * k as f64 / n as f64 * if cw { -1.0 } else { 1.0 };
            keyframes.push(Keyframe {
                t: 0.15 + 0.7 * k as f64 / n as f64,
                offset: center + point(ang),
            });
        }
        keyframes.push(Keyframe {
            t: 1.0,
            offset: REST_OFFSET,
        });
        HandPath::new(keyframes)
    }

    /// A zigzag: alternating lateral motion while descending.
    pub fn zigzag(top: Vec3, width: f64, drop: f64, legs: usize) -> HandPath {
        let legs = legs.max(2);
        let mut keyframes = vec![Keyframe {
            t: 0.0,
            offset: REST_OFFSET,
        }];
        for leg in 0..=legs {
            let frac = leg as f64 / legs as f64;
            let x = top.x
                + if leg % 2 == 0 {
                    -width / 2.0
                } else {
                    width / 2.0
                };
            keyframes.push(Keyframe {
                t: 0.2 + 0.6 * frac,
                offset: Vec3::new(x, top.y, top.z - drop * frac),
            });
        }
        keyframes.push(Keyframe {
            t: 1.0,
            offset: REST_OFFSET,
        });
        HandPath::new(keyframes)
    }

    /// Repeated patting: rest → up/down `taps` times between `hi` and `lo`
    /// → rest. The forearm pivots at the elbow, so the downstroke swings
    /// the hand slightly forward and the upstroke pulls it back — the
    /// elevation change induces a radial component, keeping vertical pats
    /// visible to a radar that only resolves radial velocity.
    pub fn pat(hi: Vec3, lo: Vec3, taps: usize) -> HandPath {
        let taps = taps.max(1);
        let mut keyframes = vec![Keyframe {
            t: 0.0,
            offset: REST_OFFSET,
        }];
        let steps = taps * 2;
        for s in 0..=steps {
            let frac = s as f64 / steps as f64;
            let mut offset = if s % 2 == 0 { hi } else { lo };
            offset.y += if s % 2 == 0 { -0.05 } else { 0.05 };
            keyframes.push(Keyframe {
                t: 0.18 + 0.64 * frac,
                offset,
            });
        }
        keyframes.push(Keyframe {
            t: 1.0,
            offset: REST_OFFSET,
        });
        HandPath::new(keyframes)
    }

    /// Wave: lateral oscillation around a centre point. The hand arcs
    /// slightly forward at each extreme (the arm pivots at the elbow), so
    /// the motion carries a radial component the radar can see.
    pub fn wave(center: Vec3, width: f64, cycles: usize) -> HandPath {
        let cycles = cycles.max(1);
        let mut keyframes = vec![Keyframe {
            t: 0.0,
            offset: REST_OFFSET,
        }];
        let steps = cycles * 2;
        for s in 0..=steps {
            let frac = s as f64 / steps as f64;
            let x = center.x
                + if s % 2 == 0 {
                    -width / 2.0
                } else {
                    width / 2.0
                };
            let y = center.y + if s % 2 == 0 { -0.06 } else { 0.06 };
            keyframes.push(Keyframe {
                t: 0.18 + 0.64 * frac,
                offset: Vec3::new(x, y, center.z),
            });
        }
        keyframes.push(Keyframe {
            t: 1.0,
            offset: REST_OFFSET,
        });
        HandPath::new(keyframes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_hits_keyframes() {
        let path = HandPath::from_tuples(&[
            (0.0, 0.0, 0.0, 0.0),
            (0.5, 1.0, 0.0, 0.0),
            (1.0, 0.0, 0.0, 0.0),
        ]);
        assert!(path.sample(0.0).distance(Vec3::ZERO) < 1e-12);
        assert!(path.sample(0.5).distance(Vec3::new(1.0, 0.0, 0.0)) < 1e-12);
        assert!(path.sample(1.0).distance(Vec3::ZERO) < 1e-12);
    }

    #[test]
    fn sample_is_continuous() {
        let path = primitives::out_and_back(Vec3::new(0.0, 0.9, 0.1));
        let mut prev = path.sample(0.0);
        for i in 1..=200 {
            let cur = path.sample(i as f64 / 200.0);
            assert!(prev.distance(cur) < 0.1, "jump at step {i}");
            prev = cur;
        }
    }

    #[test]
    fn clamps_out_of_range_phase() {
        let path = primitives::hold(Vec3::new(0.2, 0.2, 0.2));
        assert_eq!(path.sample(-1.0), path.sample(0.0));
        assert_eq!(path.sample(2.0), path.sample(1.0));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_keyframe() {
        HandPath::new(vec![Keyframe::new(0.0, 0.0, 0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotonic_times() {
        HandPath::from_tuples(&[
            (0.0, 0.0, 0.0, 0.0),
            (0.5, 1.0, 0.0, 0.0),
            (0.4, 0.0, 0.0, 0.0),
        ]);
    }

    #[test]
    fn mirror_flips_x_only() {
        let path = primitives::swipe(Vec3::new(-0.4, 0.5, 0.0), Vec3::new(0.4, 0.5, 0.0));
        let m = path.mirrored();
        let p = path.sample(0.5);
        let q = m.sample(0.5);
        assert!((p.x + q.x).abs() < 1e-12);
        assert!((p.y - q.y).abs() < 1e-12);
        assert!((p.z - q.z).abs() < 1e-12);
    }

    #[test]
    fn circle_returns_to_start() {
        let path = primitives::frontal_circle(Vec3::new(0.0, 0.6, 0.1), 0.25, false);
        let a = path.sample(0.15);
        let b = path.sample(0.85);
        assert!(a.distance(b) < 1e-9, "circle should close: {a:?} vs {b:?}");
    }

    #[test]
    fn hold_never_moves() {
        let path = primitives::hold(REST_OFFSET);
        for i in 0..=10 {
            assert!(path.sample(i as f64 / 10.0).distance(REST_OFFSET) < 1e-12);
        }
    }

    #[test]
    fn arc_length_positive_for_moving_paths() {
        let path = primitives::out_and_back(Vec3::new(0.0, 0.95, 0.0));
        assert!(path.arc_length(100) > 1.0);
        assert!(primitives::hold(REST_OFFSET).arc_length(50) < 1e-9);
    }

    #[test]
    fn zigzag_alternates_sides() {
        let path = primitives::zigzag(Vec3::new(0.0, 0.6, 0.3), 0.4, 0.5, 4);
        // Mid-leg samples should alternate in x sign.
        let xs: Vec<f64> = (0..5)
            .map(|leg| path.sample(0.2 + 0.6 * leg as f64 / 4.0).x)
            .collect();
        assert!(xs[0] < 0.0 && xs[1] > 0.0 && xs[2] < 0.0, "{xs:?}");
    }

    #[test]
    fn pat_touches_both_levels() {
        let hi = Vec3::new(0.1, 0.5, 0.1);
        let lo = Vec3::new(0.1, 0.5, -0.1);
        let path = primitives::pat(hi, lo, 2);
        let mut saw_hi = false;
        let mut saw_lo = false;
        for i in 0..=100 {
            let p = path.sample(i as f64 / 100.0);
            // The elbow arc shifts the extremes forward/back in y; the
            // pat levels are defined by x and z.
            if (p.z - hi.z).abs() < 0.02 && (p.x - hi.x).abs() < 0.02 {
                saw_hi = true;
            }
            if (p.z - lo.z).abs() < 0.02 && (p.x - lo.x).abs() < 0.02 {
                saw_lo = true;
            }
        }
        assert!(saw_hi && saw_lo);
    }

    #[test]
    fn pat_strokes_carry_forward_arc() {
        let hi = Vec3::new(0.1, 0.5, 0.1);
        let lo = Vec3::new(0.1, 0.5, -0.1);
        let path = primitives::pat(hi, lo, 2);
        let mut y_min = f64::INFINITY;
        let mut y_max = f64::NEG_INFINITY;
        for i in 0..=100 {
            let t = 0.2 + 0.6 * i as f64 / 100.0;
            let y = path.sample(t).y;
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        assert!(
            y_max - y_min > 0.08,
            "pat needs a radial (y) component: span {}",
            y_max - y_min
        );
    }
}
