//! High-watermark backpressure for bounded-queue submission.
//!
//! A [`Gate`] counts *outstanding weight* (for `gp-serve`: segments
//! pending or in flight). Producers [`Gate::acquire`] weight before
//! submitting work and the weight is released when the work completes;
//! once the outstanding weight reaches the high watermark, `acquire`
//! blocks the producer until enough work drains. That converts an
//! unbounded queue into backpressure on whoever is pushing too fast.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A weighted high-watermark counter.
#[derive(Debug)]
pub struct Gate {
    high: usize,
    count: Mutex<usize>,
    below: Condvar,
}

impl Gate {
    /// Creates a gate admitting up to `high` outstanding weight
    /// (`high` is clamped to at least 1).
    pub fn new(high: usize) -> Gate {
        Gate {
            high: high.max(1),
            count: Mutex::new(0),
            below: Condvar::new(),
        }
    }

    /// The configured high watermark.
    pub fn high_watermark(&self) -> usize {
        self.high
    }

    /// Currently outstanding weight.
    pub fn outstanding(&self) -> usize {
        *lock(&self.count)
    }

    /// Acquires `weight`, blocking while it would push the outstanding
    /// total past the high watermark. A weight larger than the
    /// watermark is admitted once the gate is empty (so one oversized
    /// batch cannot deadlock the producer).
    pub fn acquire(&self, weight: usize) {
        let mut count = lock(&self.count);
        while *count > 0 && *count + weight > self.high {
            count = self
                .below
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *count += weight;
    }

    /// Non-blocking [`Gate::acquire`]: returns `false` (acquiring
    /// nothing) when the weight does not fit — the shedding policy's
    /// building block.
    pub fn try_acquire(&self, weight: usize) -> bool {
        let mut count = lock(&self.count);
        if *count > 0 && *count + weight > self.high {
            return false;
        }
        *count += weight;
        true
    }

    /// Releases `weight` and wakes blocked producers.
    pub fn release(&self, weight: usize) {
        let mut count = lock(&self.count);
        *count = count.saturating_sub(weight);
        self.below.notify_all();
    }

    /// Wraps an already-acquired weight in a guard that releases it on
    /// drop (used by `WorkerPool::spawn_gated` so a panicking job still
    /// releases its permit).
    pub fn into_permit(self: Arc<Self>, weight: usize) -> GatePermit {
        GatePermit { gate: self, weight }
    }
}

/// An acquired weight that releases itself on drop.
#[derive(Debug)]
pub struct GatePermit {
    gate: Arc<Gate>,
    weight: usize,
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        self.gate.release(self.weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_roundtrip() {
        let gate = Gate::new(4);
        gate.acquire(3);
        assert_eq!(gate.outstanding(), 3);
        gate.release(3);
        assert_eq!(gate.outstanding(), 0);
    }

    #[test]
    fn try_acquire_rejects_at_watermark() {
        let gate = Gate::new(2);
        assert!(gate.try_acquire(2));
        assert!(!gate.try_acquire(1));
        gate.release(1);
        assert!(gate.try_acquire(1));
    }

    #[test]
    fn oversized_weight_admitted_when_empty() {
        let gate = Gate::new(2);
        gate.acquire(10); // must not deadlock
        assert_eq!(gate.outstanding(), 10);
        assert!(!gate.try_acquire(1), "full gate rejects more weight");
        gate.release(10);
    }

    #[test]
    fn acquire_blocks_until_release() {
        let gate = Arc::new(Gate::new(1));
        gate.acquire(1);
        let gate2 = gate.clone();
        let waiter = std::thread::spawn(move || {
            gate2.acquire(1); // blocks until the main thread releases
            gate2.release(1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "acquire should still be blocked");
        gate.release(1);
        waiter.join().unwrap();
        assert_eq!(gate.outstanding(), 0);
    }

    #[test]
    fn permit_releases_on_drop() {
        let gate = Arc::new(Gate::new(2));
        gate.acquire(2);
        let permit = gate.clone().into_permit(2);
        assert_eq!(gate.outstanding(), 2);
        drop(permit);
        assert_eq!(gate.outstanding(), 0);
    }

    #[test]
    fn watermark_clamped_to_one() {
        let gate = Gate::new(0);
        assert_eq!(gate.high_watermark(), 1);
        assert!(gate.try_acquire(1));
    }
}
