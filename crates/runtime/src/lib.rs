//! The shared execution layer for the GesturePrint workspace.
//!
//! Before this crate existed, three different crates hand-rolled their
//! own parallelism: `gestureprint-core` chunked per-gesture identifier
//! training over `std::thread::scope`, `gp-datasets` did the same for
//! capture work items, and `gp-serve` owned a private work-stealing pool
//! for its micro-batching executor. This crate is the single home for
//! all of it:
//!
//! * [`WorkerPool`] — a fixed-size work-stealing pool over `std`
//!   primitives. Long-lived workers each own a deque; [`WorkerPool::spawn`]
//!   round-robins jobs and idle workers steal, so uneven work still keeps
//!   every thread busy.
//! * **Ordered maps** — [`WorkerPool::map`] (and the borrowing
//!   [`WorkerPool::scope_map`] / [`WorkerPool::scope_chunked_map`])
//!   apply a function across items on the pool and return results in
//!   input order. The scoped variants accept closures that borrow the
//!   caller's stack, replacing every ad-hoc `std::thread::scope`
//!   chunking loop in the workspace.
//! * [`Gate`] — a weighted high-watermark counter for bounded-queue
//!   submission: acquiring past the watermark blocks the producer until
//!   enough outstanding work drains. [`WorkerPool::spawn_gated`] is the
//!   one-call form (the whole weight releases when the job finishes);
//!   `gp-serve` instead composes [`Gate::acquire`] with per-segment
//!   releases so blocked producers unblock as each result publishes,
//!   not only at batch end. Either way a runaway producer blocks
//!   instead of growing the queue without limit.
//! * [`TokenBucket`] — a per-tenant rate budget (capacity `burst`,
//!   refilling at `rate`/second, caller-supplied clock). Where the
//!   `Gate` bounds *global* capacity, a bucket bounds one tenant: an
//!   over-rate tenant exhausts its own tokens and sheds its own work
//!   instead of consuming shared headroom. `gp-serve` keeps one per
//!   session for admission control.
//!
//! Everything here is deterministic in the sense callers rely on:
//! ordered maps return results positionally, so a pure per-item function
//! yields identical output for 1 or N workers regardless of scheduling.

pub mod budget;
pub mod gate;
pub mod pool;

pub use budget::TokenBucket;
pub use gate::Gate;
pub use pool::WorkerPool;
