//! A work-stealing worker pool over `std` primitives, with ordered
//! parallel maps over both owned (`'static`) and borrowed (scoped) work.
//!
//! The pool owns long-lived workers, each with its own deque;
//! [`WorkerPool::spawn`] distributes jobs round-robin and idle workers
//! steal from their siblings' queues, so an uneven job mix still keeps
//! every thread busy. Jobs are plain `FnOnce` boxes; a panicking job is
//! caught and dropped so one poisoned work item cannot take a worker
//! (and every queued job behind it) down with it.
//!
//! [`WorkerPool::scope_map`] is the replacement for the
//! `std::thread::scope` chunking that used to be copy-pasted across
//! `gestureprint-core`, `gp-datasets`, and the serve bench: it runs a
//! borrowing closure over items *on the pool's existing threads* and
//! blocks until every item has finished, which is what makes the
//! borrow sound (see the safety comment inside).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

use gp_telemetry::{Counter, Gauge, Registry};

use crate::gate::Gate;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Utilization handles installed by [`WorkerPool::instrument`]: how
/// many workers are busy right now, how many jobs ran, and the total
/// busy time — enough to derive busy/idle utilization from any two
/// snapshots.
struct PoolMetrics {
    busy_workers: Arc<Gauge>,
    jobs: Arc<Counter>,
    busy_us: Arc<Counter>,
}

/// Locks ignoring poison: pool bookkeeping must stay reachable even if
/// some thread panicked at an unfortunate moment, because
/// [`WorkerPool::scope_map`]'s soundness depends on always being able
/// to wait for outstanding jobs.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Job-count + shutdown flag, guarded together so workers can sleep.
struct PoolState {
    /// Jobs queued but not yet claimed by a worker.
    queued: usize,
    shutdown: bool,
}

struct PoolShared {
    /// One deque per worker; `spawn` round-robins, idle workers steal.
    queues: Vec<Mutex<VecDeque<Job>>>,
    state: Mutex<PoolState>,
    work_available: Condvar,
    /// Set at most once by [`WorkerPool::instrument`]; uninstrumented
    /// pools pay a single relaxed load per job.
    metrics: OnceLock<PoolMetrics>,
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool drains all queued jobs, then joins the workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    next: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
}

/// Completion latch for one `scope_map` call: counts finished jobs and
/// wakes the waiting caller.
struct Latch {
    count: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            count: Mutex::new(0),
            done: Condvar::new(),
        }
    }

    /// Blocks until `n` jobs have counted themselves finished.
    fn wait(&self, n: usize) {
        let mut count = lock(&self.count);
        while *count < n {
            count = self
                .done
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Counts one finished job on drop — so a panicking closure still
/// counts and the caller cannot wait forever. The notify happens while
/// the latch mutex is held: once the caller observes the final count
/// (and may free the latch), this guard provably no longer touches it.
struct LatchGuard<'a>(&'a Latch);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        let mut count = lock(&self.0.count);
        *count += 1;
        self.0.done.notify_all();
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (`0` = available
    /// parallelism).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                queued: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            metrics: OnceLock::new(),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gp-runtime-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            next: AtomicUsize::new(0),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Publishes this pool's utilization into `registry` under
    /// `{prefix}.busy_workers` (gauge), `{prefix}.jobs` and
    /// `{prefix}.busy_us` (counters), and `{prefix}.workers` (gauge,
    /// the fixed thread count). Calling it again (any prefix) is a
    /// no-op: the first registration wins.
    pub fn instrument(&self, registry: &Registry, prefix: &str) {
        registry
            .gauge(&format!("{prefix}.workers"))
            .set(self.threads() as i64);
        let _ = self.shared.metrics.set(PoolMetrics {
            busy_workers: registry.gauge(&format!("{prefix}.busy_workers")),
            jobs: registry.counter(&format!("{prefix}.jobs")),
            busy_us: registry.counter(&format!("{prefix}.busy_us")),
        });
    }

    /// Enqueues a job; returns immediately.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.inject(Box::new(job));
    }

    /// Enqueues a job behind `gate`, blocking while the gate's
    /// outstanding weight is at its high watermark — the bounded-queue
    /// submission path. The job's weight is released when it finishes
    /// (even if it panics), which unblocks waiting producers.
    pub fn spawn_gated(
        &self,
        gate: &Arc<Gate>,
        weight: usize,
        job: impl FnOnce() + Send + 'static,
    ) {
        gate.acquire(weight);
        let permit = gate.clone().into_permit(weight);
        self.spawn(move || {
            let _permit = permit;
            job();
        });
    }

    fn inject(&self, job: Job) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        lock(&self.shared.queues[w]).push_back(job);
        let mut state = lock(&self.shared.state);
        state.queued += 1;
        drop(state);
        self.shared.work_available.notify_one();
    }

    /// Parallel indexed map over owned items: applies `f(index, item)`
    /// to every item on the pool and blocks until all results are in,
    /// preserving input order.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> U + Send + Sync + 'static,
    {
        self.scope_map(items, f)
    }

    /// Parallel indexed map whose closure may borrow from the caller —
    /// the streaming-pool replacement for `std::thread::scope` chunking.
    /// Applies `f(index, item)` to every item on the pool's workers and
    /// blocks until all results are in, preserving input order.
    ///
    /// Results are positional, so a pure `f` yields identical output
    /// for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if any closure invocation panicked (after all items have
    /// finished). Must not be called from within a pool job of the same
    /// pool: the caller blocks its worker, which can deadlock.
    pub fn scope_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let slots: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());
        let latch = Latch::new();
        {
            let slots = &slots;
            let latch = &latch;
            let f = &f;
            for (i, item) in items.into_iter().enumerate() {
                let job = move || {
                    // Declared first so it drops last: the slot write
                    // happens before the finish count, and a panic in
                    // `f` still counts on unwind (leaving the slot
                    // empty, which the caller detects below).
                    let _finished = LatchGuard(latch);
                    let out = f(i, item);
                    lock(slots)[i] = Some(out);
                };
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(job);
                // SAFETY: the job borrows `f`, `slots`, and `latch`,
                // which live on this stack frame. Erasing the lifetime
                // is sound because this function cannot return (or
                // unwind) before `latch.wait(n)` observes every job
                // finished: jobs enqueued on the pool always run
                // (worker panics are caught per job, and pool shutdown
                // drains queues before joining), every job counts the
                // latch exactly once via `LatchGuard` even when `f`
                // panics, and nothing between this loop and the wait
                // can fail (all pool/latch locks ignore poisoning).
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                self.inject(job);
            }
            latch.wait(n);
        }
        slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|slot| slot.expect("a scoped map closure panicked; its result slot is empty"))
            .collect()
    }

    /// [`WorkerPool::scope_map`] over chunks: items are grouped into
    /// runs of `chunk` consecutive items and each run is one pool job,
    /// amortising per-job overhead when items are cheap. Results stay
    /// in input order and `f` still sees each item's original index.
    pub fn scope_chunked_map<T, U, F>(&self, items: Vec<T>, chunk: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let chunk = chunk.max(1);
        let mut chunks: Vec<Vec<(usize, T)>> = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            if i % chunk == 0 {
                chunks.push(Vec::with_capacity(chunk));
            }
            chunks
                .last_mut()
                .expect("chunk pushed above")
                .push((i, item));
        }
        self.scope_map(chunks, |_, run| {
            run.into_iter()
                .map(|(i, item)| f(i, item))
                .collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

fn worker_loop(me: usize, shared: &PoolShared) {
    loop {
        // Sleep until a job is queued (or drain the backlog on shutdown).
        {
            let mut state = lock(&shared.state);
            while state.queued == 0 && !state.shutdown {
                state = shared
                    .work_available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if state.queued == 0 && state.shutdown {
                return;
            }
            state.queued -= 1;
        }
        // One job is now reserved for us somewhere: own queue first
        // (front, FIFO), then steal from siblings (back, LIFO — the
        // classic stealing end). The reservation count guarantees the
        // scan terminates.
        let job = 'find: loop {
            for k in 0..shared.queues.len() {
                let q = (me + k) % shared.queues.len();
                let popped = {
                    let mut queue = lock(&shared.queues[q]);
                    if q == me {
                        queue.pop_front()
                    } else {
                        queue.pop_back()
                    }
                };
                if let Some(job) = popped {
                    break 'find job;
                }
            }
            std::thread::yield_now();
        };
        // A panicking job must not kill the worker: the queue behind it
        // still has owners waiting on results.
        if let Some(metrics) = shared.metrics.get() {
            metrics.busy_workers.add(1);
            let start = std::time::Instant::now();
            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
            metrics.busy_us.add(start.elapsed().as_micros() as u64);
            metrics.jobs.inc();
            metrics.busy_workers.sub(1);
        } else {
            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map((0..100u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scope_map_borrows_caller_state() {
        let pool = WorkerPool::new(3);
        // Borrowed, non-'static data: the whole point of scope_map.
        let base = vec![10u64, 20, 30, 40, 50];
        let out = pool.scope_map((0..5usize).collect(), |_, i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31, 41, 51]);
    }

    #[test]
    fn scope_map_matches_serial_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 5] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.scope_map(items.clone(), |_, x| x * x + 1), serial);
        }
    }

    #[test]
    fn scope_chunked_map_preserves_order_and_indices() {
        let pool = WorkerPool::new(2);
        let out = pool.scope_chunked_map((0..23u64).collect(), 5, |i, x| {
            assert_eq!(i as u64, x);
            x + 100
        });
        assert_eq!(out, (100..123u64).collect::<Vec<_>>());
    }

    #[test]
    fn many_more_jobs_than_workers_all_run() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let counter = counter.clone();
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains the backlog before joining
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(2);
        pool.spawn(|| panic!("poisoned batch"));
        // The pool must still process subsequent work on every thread.
        let out = pool.map((0..64u64).collect(), |_, x| x + 1);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn panicking_map_closure_panics_the_caller_instead_of_hanging() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope_map((0..8u64).collect(), |_, x| {
                if x == 3 {
                    panic!("bad item");
                }
                x
            })
        }));
        assert!(result.is_err(), "scope_map must not swallow the panic");
        // And the pool is still usable afterwards.
        assert_eq!(pool.scope_map(vec![1u64], |_, x| x * 2), vec![2]);
    }

    #[test]
    fn instrumented_pool_counts_jobs_and_busy_time() {
        let registry = Registry::new();
        let pool = WorkerPool::new(2);
        pool.instrument(&registry, "pool");
        pool.scope_map((0..32u64).collect(), |_, _| {
            std::thread::sleep(std::time::Duration::from_micros(300));
        });
        // The scope_map latch releases inside the job, a hair before the
        // worker's metric writes; joining the workers makes the counters
        // exact rather than eventually-consistent.
        drop(pool);
        let snap = registry.snapshot();
        assert_eq!(snap.gauges.get("pool.workers"), Some(&2));
        assert_eq!(snap.counters.get("pool.jobs"), Some(&32));
        // 32 × ≥300 µs of work happened on the pool's clock.
        assert!(snap.counters["pool.busy_us"] >= 32 * 300);
        // Quiesced: nobody is mid-job now.
        assert_eq!(snap.gauges.get("pool.busy_workers"), Some(&0));
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn work_distributes_across_threads() {
        let pool = WorkerPool::new(4);
        let seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        let slow = std::time::Duration::from_millis(20);
        pool.scope_map((0..16u64).collect(), |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(slow);
        });
        // With 16 × 20 ms jobs on 4 workers, at least two threads must
        // have participated (a single thread would need 320 ms of
        // serial work while its siblings steal).
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn spawn_gated_bounds_outstanding_weight() {
        let pool = WorkerPool::new(2);
        let gate = Arc::new(Gate::new(3));
        let peak = Arc::new(AtomicU64::new(0));
        for _ in 0..40 {
            let gate_obs = gate.clone();
            let peak = peak.clone();
            pool.spawn_gated(&gate, 1, move || {
                peak.fetch_max(gate_obs.outstanding() as u64, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
            assert!(gate.outstanding() <= 3, "producer overran the watermark");
        }
        drop(pool);
        assert_eq!(gate.outstanding(), 0, "all permits released");
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }
}
