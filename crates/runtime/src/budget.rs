//! Token-bucket rate budgets for per-tenant admission control.
//!
//! A [`TokenBucket`] holds up to `burst` tokens and refills at a fixed
//! `rate` (tokens per second). Admitting one unit of work takes one
//! token; when the bucket is empty the work is *over budget* and the
//! caller sheds it. Unlike the engine-global [`crate::Gate`], a bucket
//! belongs to one tenant, so an over-rate tenant exhausts only its own
//! budget and cannot starve anyone else — the fairness building block
//! the serving layer's per-session admission is built on.
//!
//! The bucket does no clock reads of its own: every operation takes the
//! current time as a monotonic `now` in seconds (the caller picks the
//! epoch). That keeps refill deterministic under test — feed synthetic
//! timestamps — while production callers pass `Instant::elapsed` of a
//! fixed epoch.

/// A token bucket: capacity `burst`, refilling at `rate` tokens/second.
///
/// Not internally synchronised; callers wrap it in their own lock (the
/// serving layer keeps one bucket inside each session's mutex).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    /// Timestamp (caller's epoch, seconds) of the last refill.
    last: f64,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// `rate` is tokens per second; `burst` is the capacity (both are
    /// clamped to be non-negative; a zero-rate, zero-burst bucket
    /// rejects everything).
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        let rate = if rate.is_finite() { rate.max(0.0) } else { 0.0 };
        let burst = if burst.is_finite() {
            burst.max(0.0)
        } else {
            0.0
        };
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: 0.0,
        }
    }

    /// The refill rate (tokens per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The bucket capacity.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Tokens available at time `now` (refills first).
    pub fn available(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Takes `cost` tokens at time `now`; returns `false` (taking
    /// nothing) when the bucket holds fewer than `cost`.
    pub fn try_take(&mut self, cost: f64, now: f64) -> bool {
        self.refill(now);
        if self.tokens + 1e-9 < cost {
            return false;
        }
        self.tokens -= cost;
        true
    }

    /// Returns `cost` tokens to the bucket (capped at `burst`) — used
    /// when admission succeeded at the budget but was then refused
    /// downstream, so the tenant is not charged for work that never
    /// ran.
    pub fn refund(&mut self, cost: f64) {
        self.tokens = (self.tokens + cost.max(0.0)).min(self.burst);
    }

    fn refill(&mut self, now: f64) {
        // A non-monotonic caller clock only delays refill; it can never
        // mint tokens retroactively.
        if now > self.last {
            self.tokens = (self.tokens + (now - self.last) * self.rate).min(self.burst);
            self.last = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(10.0, 3.0);
        assert!(b.try_take(1.0, 0.0));
        assert!(b.try_take(1.0, 0.0));
        assert!(b.try_take(1.0, 0.0));
        assert!(!b.try_take(1.0, 0.0), "burst exhausted");
    }

    #[test]
    fn refills_at_rate_capped_at_burst() {
        let mut b = TokenBucket::new(2.0, 4.0);
        for _ in 0..4 {
            assert!(b.try_take(1.0, 0.0));
        }
        assert!(!b.try_take(1.0, 0.25), "0.25s × 2/s = 0.5 tokens < 1");
        assert!(b.try_take(1.0, 0.5), "1 token accrued by 0.5s");
        // A long idle period refills to burst, no further.
        assert!((b.available(100.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_zero_burst_rejects_everything() {
        let mut b = TokenBucket::new(0.0, 0.0);
        assert!(!b.try_take(1.0, 0.0));
        assert!(!b.try_take(1.0, 1e6));
    }

    #[test]
    fn zero_rate_with_burst_is_a_fixed_allowance() {
        let mut b = TokenBucket::new(0.0, 2.0);
        assert!(b.try_take(1.0, 0.0));
        assert!(b.try_take(1.0, 1.0));
        assert!(!b.try_take(1.0, 1e6), "never refills");
    }

    #[test]
    fn refund_returns_tokens_up_to_burst() {
        let mut b = TokenBucket::new(0.0, 2.0);
        assert!(b.try_take(2.0, 0.0));
        b.refund(1.0);
        assert!(b.try_take(1.0, 0.0));
        b.refund(50.0); // capped at burst
        assert!((b.available(0.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clock_going_backwards_never_mints_tokens() {
        let mut b = TokenBucket::new(1.0, 1.0);
        assert!(b.try_take(1.0, 10.0));
        assert!(!b.try_take(1.0, 5.0), "earlier timestamp refills nothing");
        assert!(
            b.try_take(1.0, 11.0),
            "refill resumes past the high-water time"
        );
    }

    #[test]
    fn non_finite_parameters_are_clamped() {
        let mut b = TokenBucket::new(f64::NAN, f64::INFINITY);
        assert_eq!(b.rate(), 0.0);
        assert_eq!(b.burst(), 0.0);
        assert!(!b.try_take(1.0, 0.0));
    }
}
