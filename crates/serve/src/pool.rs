//! A small work-stealing worker pool over `std` primitives.
//!
//! The ROADMAP's "parallelism beyond scoped threads" item: the training
//! and dataset builders hand-roll `std::thread::scope` chunking, which
//! cannot serve a *stream* of work arriving over time. This pool owns
//! long-lived workers, each with its own deque; [`WorkerPool::spawn`]
//! distributes jobs round-robin and idle workers steal from their
//! siblings' queues, so an uneven micro-batch mix still keeps every
//! thread busy.
//!
//! Jobs are plain `FnOnce` boxes. A panicking job is caught and dropped
//! so one poisoned batch cannot take a worker (and every queued job
//! behind it) down with it.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Job-count + shutdown flag, guarded together so workers can sleep.
struct PoolState {
    /// Jobs queued but not yet claimed by a worker.
    queued: usize,
    shutdown: bool,
}

struct PoolShared {
    /// One deque per worker; `spawn` round-robins, idle workers steal.
    queues: Vec<Mutex<VecDeque<Job>>>,
    state: Mutex<PoolState>,
    work_available: Condvar,
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool drains all queued jobs, then joins the workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    next: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (`0` = available
    /// parallelism).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(PoolState {
                queued: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gp-serve-worker-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            next: AtomicUsize::new(0),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Enqueues a job; returns immediately.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[w]
            .lock()
            .expect("pool queue poisoned")
            .push_back(Box::new(job));
        let mut state = self.shared.state.lock().expect("pool state poisoned");
        state.queued += 1;
        drop(state);
        self.shared.work_available.notify_one();
    }

    /// Parallel indexed map: applies `f(index, item)` to every item on
    /// the pool and blocks until all results are in, preserving input
    /// order. The streaming replacement for ad-hoc
    /// `std::thread::scope` chunking.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: Fn(usize, T) -> U + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        type Latch = (Mutex<usize>, Condvar);
        /// Signals the completion latch on drop — *after* releasing the
        /// slots Arc — so a panicking closure still counts (the caller
        /// would otherwise wait forever) and the caller can unwrap the
        /// Arc the moment the count reaches `n`.
        struct MapGuard<U> {
            slots: Option<Arc<Mutex<Vec<Option<U>>>>>,
            done: Arc<Latch>,
        }
        impl<U> Drop for MapGuard<U> {
            fn drop(&mut self) {
                self.slots = None;
                let (count, cv) = &*self.done;
                *count.lock().expect("map latch poisoned") += 1;
                cv.notify_all();
            }
        }
        let slots: Arc<Mutex<Vec<Option<U>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let done: Arc<Latch> = Arc::new((Mutex::new(0usize), Condvar::new()));
        let f = Arc::new(f);
        for (i, item) in items.into_iter().enumerate() {
            let guard = MapGuard {
                slots: Some(slots.clone()),
                done: done.clone(),
            };
            let f = f.clone();
            self.spawn(move || {
                let out = f(i, item);
                guard
                    .slots
                    .as_ref()
                    .expect("slots released early")
                    .lock()
                    .expect("map slots poisoned")[i] = Some(out);
            });
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().expect("map latch poisoned");
        while *finished < n {
            finished = cv.wait(finished).expect("map latch poisoned");
        }
        drop(finished);
        Arc::try_unwrap(slots)
            .unwrap_or_else(|_| panic!("map slots still shared after completion"))
            .into_inner()
            .expect("map slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("a map closure panicked; its result slot is empty"))
            .collect()
    }
}

fn worker_loop(me: usize, shared: &PoolShared) {
    loop {
        // Sleep until a job is queued (or drain the backlog on shutdown).
        {
            let mut state = shared.state.lock().expect("pool state poisoned");
            while state.queued == 0 && !state.shutdown {
                state = shared
                    .work_available
                    .wait(state)
                    .expect("pool state poisoned");
            }
            if state.queued == 0 && state.shutdown {
                return;
            }
            state.queued -= 1;
        }
        // One job is now reserved for us somewhere: own queue first
        // (front, FIFO), then steal from siblings (back, LIFO — the
        // classic stealing end). The reservation count guarantees the
        // scan terminates.
        let job = 'find: loop {
            for k in 0..shared.queues.len() {
                let q = (me + k) % shared.queues.len();
                let popped = {
                    let mut queue = shared.queues[q].lock().expect("pool queue poisoned");
                    if q == me {
                        queue.pop_front()
                    } else {
                        queue.pop_back()
                    }
                };
                if let Some(job) = popped {
                    break 'find job;
                }
            }
            std::thread::yield_now();
        };
        // A panicking job must not kill the worker: the queue behind it
        // still has owners waiting on results.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map((0..100u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn many_more_jobs_than_workers_all_run() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..500 {
            let counter = counter.clone();
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains the backlog before joining
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(2);
        pool.spawn(|| panic!("poisoned batch"));
        // The pool must still process subsequent work on every thread.
        let out = pool.map((0..64u64).collect(), |_, x| x + 1);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn panicking_map_closure_panics_the_caller_instead_of_hanging() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..8u64).collect(), |_, x| {
                if x == 3 {
                    panic!("bad item");
                }
                x
            })
        }));
        assert!(result.is_err(), "map must not swallow the panic");
        // And the pool is still usable afterwards.
        assert_eq!(pool.map(vec![1u64], |_, x| x * 2), vec![2]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn work_distributes_across_threads() {
        let pool = WorkerPool::new(4);
        let seen: Arc<Mutex<std::collections::HashSet<std::thread::ThreadId>>> =
            Arc::new(Mutex::new(std::collections::HashSet::new()));
        let slow = std::time::Duration::from_millis(20);
        let seen2 = seen.clone();
        pool.map((0..16u64).collect(), move |_, _| {
            seen2.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(slow);
        });
        // With 16 × 20 ms jobs on 4 workers, at least two threads must
        // have participated (a single thread would need 320 ms of
        // serial work while its siblings steal).
        assert!(seen.lock().unwrap().len() >= 2);
    }
}
