//! Per-stream session state: an online segmenter plus a bounded frame
//! buffer that keeps exactly the frames a future segment can still
//! reference.
//!
//! A session declares its sensing modality when it is opened and keeps
//! the matching segmentation state: point-cloud sessions run
//! [`OnlineSegmenter`] over radar [`Frame`]s, range-Doppler sessions
//! run [`OnlineRdSegmenter`] over [`RdFrame`]s. A point-cloud session
//! may additionally be driven with *paired* pushes (one point frame +
//! the aligned RD frame), in which case it keeps an RD shadow buffer so
//! the engine can hand a sparse segment to the range-Doppler backend.

use gestureprint_core::SensingBackend;
use gp_pipeline::{GestureSample, GestureSegment, OnlineSegmenter, Preprocessor};
use gp_radar::Frame;
use gp_rd::{OnlineRdSegmenter, RdFrame, RdLabeledSample, RdSegment};
use gp_runtime::TokenBucket;
use std::collections::VecDeque;

/// Identifier of one radar stream multiplexed through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// A segment completed by one push (or by the session close), in
/// whichever representation the session streams.
#[derive(Debug)]
pub(crate) enum ClosedSegment {
    /// A point-cloud segment. The sample side is `None` when noise
    /// canceling rejects the closed segment (mirroring the offline
    /// pipeline's drop rule) — the segment is still reported so drop
    /// rates are observable. For hybrid (paired-push) sessions the
    /// aligned range-Doppler window rides along so the engine's
    /// sparse-cloud fallback can re-route the segment.
    Point(
        GestureSegment,
        Option<GestureSample>,
        Option<RdLabeledSample>,
    ),
    /// A range-Doppler segment with its assembled (unlabeled) sample.
    Rd(RdSegment, RdLabeledSample),
}

/// The modality-specific half of a session: segmentation state plus the
/// trailing frames needed to assemble the next segment's sample.
#[derive(Debug)]
enum Stream {
    Point {
        segmenter: OnlineSegmenter,
        /// Retained frames; `buffer[0]` has absolute index `base`.
        buffer: VecDeque<Frame>,
        /// Aligned RD shadow buffer, allocated on the first paired
        /// push. A session that starts paired must stay paired — the
        /// shadow shares `base` with the point buffer.
        rd_shadow: Option<VecDeque<RdFrame>>,
        base: usize,
    },
    Rd {
        segmenter: OnlineRdSegmenter,
        buffer: VecDeque<RdFrame>,
        base: usize,
    },
}

/// One live stream: incremental segmentation state plus the trailing
/// frames needed to assemble the next segment's sample.
#[derive(Debug)]
pub(crate) struct Session {
    stream: Stream,
    /// Per-session admission budget; `None` = unlimited. Guarded by the
    /// session mutex like the rest of the per-stream state.
    budget: Option<TokenBucket>,
}

impl Session {
    /// A point-cloud session (the paper's default modality).
    pub(crate) fn new_point(segmenter: OnlineSegmenter, budget: Option<TokenBucket>) -> Self {
        Session {
            stream: Stream::Point {
                segmenter,
                buffer: VecDeque::new(),
                rd_shadow: None,
                base: 0,
            },
            budget,
        }
    }

    /// A range-Doppler session.
    pub(crate) fn new_rd(segmenter: OnlineRdSegmenter, budget: Option<TokenBucket>) -> Self {
        Session {
            stream: Stream::Rd {
                segmenter,
                buffer: VecDeque::new(),
                base: 0,
            },
            budget,
        }
    }

    /// The sensing modality this session was opened with.
    pub(crate) fn backend(&self) -> SensingBackend {
        match &self.stream {
            Stream::Point { .. } => SensingBackend::PointCloud,
            Stream::Rd { .. } => SensingBackend::RangeDoppler,
        }
    }

    /// The session's admission budget, if one is configured.
    pub(crate) fn budget_mut(&mut self) -> Option<&mut TokenBucket> {
        self.budget.as_mut()
    }

    /// Feeds one point-cloud frame; when it closes a gesture, assembles
    /// the segment's sample from the buffered frames.
    ///
    /// # Panics
    ///
    /// Panics on a range-Doppler session, or on a hybrid session that
    /// has already received paired pushes (the shadow buffer would
    /// desynchronize).
    pub(crate) fn push(&mut self, frame: Frame, pre: &Preprocessor) -> Option<ClosedSegment> {
        self.push_point(frame, None, pre)
    }

    /// Feeds one point-cloud frame together with the aligned
    /// range-Doppler frame (hybrid session). The two streams must be
    /// paired from the session's first frame so absolute indices line
    /// up.
    ///
    /// # Panics
    ///
    /// Panics on a range-Doppler session, or when earlier frames were
    /// pushed unpaired.
    pub(crate) fn push_paired(
        &mut self,
        frame: Frame,
        rd: RdFrame,
        pre: &Preprocessor,
    ) -> Option<ClosedSegment> {
        self.push_point(frame, Some(rd), pre)
    }

    fn push_point(
        &mut self,
        frame: Frame,
        rd: Option<RdFrame>,
        pre: &Preprocessor,
    ) -> Option<ClosedSegment> {
        let Stream::Point {
            segmenter,
            buffer,
            rd_shadow,
            base,
        } = &mut self.stream
        else {
            panic!("point-cloud frame pushed into a range-Doppler session");
        };
        match (&mut *rd_shadow, rd) {
            (Some(shadow), Some(rd)) => shadow.push_back(rd),
            (None, Some(rd)) => {
                assert!(
                    buffer.is_empty() && *base == 0,
                    "hybrid sessions must be paired from the first frame"
                );
                let mut shadow = VecDeque::new();
                shadow.push_back(rd);
                *rd_shadow = Some(shadow);
            }
            (Some(_), None) => panic!("hybrid sessions must stay paired (unpaired push)"),
            (None, None) => {}
        }
        let segment = segmenter.push_frame(&frame);
        buffer.push_back(frame);
        let out = segment.map(|seg| {
            let sample = assemble_point(buffer, *base, seg, pre);
            let rd = rd_shadow
                .as_mut()
                .map(|shadow| assemble_rd(shadow, *base, seg.start, seg.end));
            ClosedSegment::Point(seg, sample, rd)
        });
        let keep_from = segmenter.earliest_needed();
        trim(buffer, base, keep_from, rd_shadow.as_mut());
        out
    }

    /// Feeds one range-Doppler frame; when it closes a segment,
    /// assembles the segment's sample from the buffered frames.
    ///
    /// # Panics
    ///
    /// Panics on a point-cloud session.
    pub(crate) fn push_rd(&mut self, frame: RdFrame) -> Option<ClosedSegment> {
        let Stream::Rd {
            segmenter,
            buffer,
            base,
        } = &mut self.stream
        else {
            panic!("range-Doppler frame pushed into a point-cloud session");
        };
        let segment = segmenter.push(&frame);
        buffer.push_back(frame);
        let out = segment.map(|seg| {
            let sample = assemble_rd(buffer, *base, seg.start, seg.end);
            ClosedSegment::Rd(seg, sample)
        });
        let keep_from = segmenter.earliest_needed();
        trim(buffer, base, keep_from, None);
        out
    }

    /// Closes a gesture still open at end of stream, if any.
    pub(crate) fn finish(&mut self, pre: &Preprocessor) -> Option<ClosedSegment> {
        match &mut self.stream {
            Stream::Point {
                segmenter,
                buffer,
                rd_shadow,
                base,
            } => {
                let seg = segmenter.finish()?;
                let sample = assemble_point(buffer, *base, seg, pre);
                let rd = rd_shadow
                    .as_mut()
                    .map(|shadow| assemble_rd(shadow, *base, seg.start, seg.end));
                Some(ClosedSegment::Point(seg, sample, rd))
            }
            Stream::Rd {
                segmenter,
                buffer,
                base,
            } => {
                let seg = segmenter.finish()?;
                Some(ClosedSegment::Rd(
                    seg,
                    assemble_rd(buffer, *base, seg.start, seg.end),
                ))
            }
        }
    }

    /// Total frames pushed into this session.
    pub(crate) fn frames_seen(&self) -> usize {
        match &self.stream {
            Stream::Point { segmenter, .. } => segmenter.frames_seen(),
            Stream::Rd { segmenter, .. } => segmenter.frames_seen(),
        }
    }

    /// Number of frames currently retained (bounded while idle; the RD
    /// shadow of a hybrid session mirrors this count).
    pub(crate) fn buffered(&self) -> usize {
        match &self.stream {
            Stream::Point { buffer, .. } => buffer.len(),
            Stream::Rd { buffer, .. } => buffer.len(),
        }
    }
}

fn assemble_point(
    buffer: &mut VecDeque<Frame>,
    base: usize,
    seg: GestureSegment,
    pre: &Preprocessor,
) -> Option<GestureSample> {
    debug_assert!(
        seg.start >= base,
        "segment start {} precedes trimmed buffer base {}",
        seg.start,
        base
    );
    let lo = seg.start - base;
    let hi = seg.end - base;
    let frames = buffer.make_contiguous();
    pre.assemble(&frames[lo..hi], seg.start)
}

/// Slices the `[start, end)` window out of an RD buffer as an unlabeled
/// sample (labels are inference-ignored placeholders, like the point
/// path's `LabeledSample::from_sample(sample, 0, 0)`).
fn assemble_rd(
    buffer: &mut VecDeque<RdFrame>,
    base: usize,
    start: usize,
    end: usize,
) -> RdLabeledSample {
    debug_assert!(
        start >= base,
        "segment start {start} precedes trimmed buffer base {base}"
    );
    let lo = start - base;
    let hi = end - base;
    let frames = buffer.make_contiguous();
    RdLabeledSample::from_segment(frames, lo, hi, 0, 0)
}

/// Drops frames no future segment can reference (see the segmenters'
/// `earliest_needed`). A hybrid session's RD shadow shares the point
/// buffer's base and is trimmed in lockstep.
fn trim<T>(
    buffer: &mut VecDeque<T>,
    base: &mut usize,
    keep_from: usize,
    mut shadow: Option<&mut VecDeque<RdFrame>>,
) {
    while *base < keep_from && !buffer.is_empty() {
        buffer.pop_front();
        if let Some(shadow) = shadow.as_deref_mut() {
            shadow.pop_front();
        }
        *base += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pipeline::{PreprocessorConfig, SegmenterConfig};
    use gp_pointcloud::{Point, PointCloud, Vec3};
    use gp_rd::{RdConfig, RdSegmentConfig};

    fn frame(i: usize, points: usize) -> Frame {
        let cloud: PointCloud = (0..points)
            .map(|k| Point::new(Vec3::new(k as f64 * 0.05, 1.2, 1.0), 0.4, 15.0))
            .collect();
        Frame::new(i as f64 * 0.1, cloud)
    }

    /// An RD frame with roughly `level` off-DC log-power.
    fn rd_frame(cfg: &RdConfig, i: usize, level: f64) -> RdFrame {
        let mut f = RdFrame::zeros(cfg, i as f64 * 0.1);
        if level > 0.0 {
            f.power[12 * cfg.range_bins + 20] = level.exp() - 1.0;
        }
        f
    }

    #[test]
    fn idle_stream_keeps_buffer_bounded() {
        let cfg = SegmenterConfig::default();
        let motion_window = cfg.motion_window;
        let mut session = Session::new_point(OnlineSegmenter::new(cfg), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        for i in 0..5_000 {
            assert!(session.push(frame(i, 1), &pre).is_none());
            assert!(
                session.buffered() <= motion_window + 1,
                "idle buffer grew to {} at frame {i}",
                session.buffered()
            );
        }
        assert_eq!(session.frames_seen(), 5_000);
        assert_eq!(session.backend(), SensingBackend::PointCloud);
    }

    #[test]
    fn burst_yields_one_assembled_sample() {
        let mut session =
            Session::new_point(OnlineSegmenter::new(SegmenterConfig::default()), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        let mut out = Vec::new();
        for i in 0..70 {
            let points = if (20..45).contains(&i) { 14 } else { 1 };
            out.extend(session.push(frame(i, points), &pre));
        }
        out.extend(session.finish(&pre));
        assert_eq!(out.len(), 1, "expected exactly one segment");
        let ClosedSegment::Point(seg, sample, rd) = &out[0] else {
            panic!("point session closed a non-point segment");
        };
        let sample = sample.as_ref().expect("noise canceling keeps the burst");
        assert!((18..=24).contains(&seg.start), "start {}", seg.start);
        assert_eq!(sample.start_frame, seg.start);
        assert_eq!(sample.duration_frames, seg.len());
        assert!(!sample.cloud.is_empty());
        assert!(rd.is_none(), "unpaired session has no RD window");
    }

    #[test]
    fn gesture_open_at_stream_end_is_flushed() {
        let mut session =
            Session::new_point(OnlineSegmenter::new(SegmenterConfig::default()), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        let mut out = Vec::new();
        for i in 0..45 {
            let points = if i >= 30 { 14 } else { 1 };
            out.extend(session.push(frame(i, points), &pre));
        }
        assert!(out.is_empty(), "gesture still open");
        out.extend(session.finish(&pre));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn rd_session_segments_a_burst() {
        let cfg = RdConfig::default();
        let mut session = Session::new_rd(OnlineRdSegmenter::new(RdSegmentConfig::default()), None);
        assert_eq!(session.backend(), SensingBackend::RangeDoppler);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        let mut out = Vec::new();
        for i in 0..40 {
            let level = if (10..22).contains(&i) { 20.0 } else { 0.1 };
            out.extend(session.push_rd(rd_frame(&cfg, i, level)));
        }
        out.extend(session.finish(&pre));
        assert_eq!(out.len(), 1, "expected exactly one segment");
        let ClosedSegment::Rd(seg, sample) = &out[0] else {
            panic!("RD session closed a non-RD segment");
        };
        assert_eq!((seg.start, seg.end), (10, 22));
        assert_eq!(sample.duration_frames, 12);
        assert_eq!(sample.frames.len(), 12);
        // Idle tail trimmed the buffer behind the stream head.
        assert!(session.buffered() <= 1, "buffered {}", session.buffered());
    }

    #[test]
    fn paired_session_carries_aligned_rd_window() {
        let cfg = RdConfig::default();
        let mut session =
            Session::new_point(OnlineSegmenter::new(SegmenterConfig::default()), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        let mut out = Vec::new();
        for i in 0..70 {
            let points = if (20..45).contains(&i) { 14 } else { 1 };
            out.extend(session.push_paired(frame(i, points), rd_frame(&cfg, i, 5.0), &pre));
        }
        out.extend(session.finish(&pre));
        assert_eq!(out.len(), 1);
        let ClosedSegment::Point(seg, _, rd) = &out[0] else {
            panic!("paired session closed a non-point segment");
        };
        let rd = rd.as_ref().expect("paired session carries the RD window");
        assert_eq!(rd.duration_frames, seg.len());
        // Alignment: the window's first frame is the segment's start.
        assert!((rd.frames[0].timestamp - seg.start as f64 * 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "range-Doppler frame pushed into a point-cloud session")]
    fn point_session_rejects_rd_frames() {
        let cfg = RdConfig::default();
        let mut session =
            Session::new_point(OnlineSegmenter::new(SegmenterConfig::default()), None);
        session.push_rd(rd_frame(&cfg, 0, 0.1));
    }

    #[test]
    #[should_panic(expected = "point-cloud frame pushed into a range-Doppler session")]
    fn rd_session_rejects_point_frames() {
        let mut session = Session::new_rd(OnlineRdSegmenter::new(RdSegmentConfig::default()), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        session.push(frame(0, 1), &pre);
    }

    #[test]
    #[should_panic(expected = "paired from the first frame")]
    fn late_pairing_is_rejected() {
        let cfg = RdConfig::default();
        let mut session =
            Session::new_point(OnlineSegmenter::new(SegmenterConfig::default()), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        session.push(frame(0, 1), &pre);
        session.push_paired(frame(1, 1), rd_frame(&cfg, 1, 0.1), &pre);
    }
}
