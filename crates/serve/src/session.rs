//! Per-stream session state: an online segmenter plus a bounded frame
//! buffer that keeps exactly the frames a future segment can still
//! reference.

use gp_pipeline::{GestureSample, GestureSegment, OnlineSegmenter, Preprocessor};
use gp_radar::Frame;
use gp_runtime::TokenBucket;
use std::collections::VecDeque;

/// Identifier of one radar stream multiplexed through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// One live stream: incremental segmentation state plus the trailing
/// frames needed to assemble the next segment's sample.
#[derive(Debug)]
pub(crate) struct Session {
    segmenter: OnlineSegmenter,
    /// Retained frames; `buffer[0]` has absolute index `base`.
    buffer: VecDeque<Frame>,
    base: usize,
    /// Per-session admission budget; `None` = unlimited. Guarded by the
    /// session mutex like the rest of the per-stream state.
    budget: Option<TokenBucket>,
}

impl Session {
    pub(crate) fn new(segmenter: OnlineSegmenter, budget: Option<TokenBucket>) -> Self {
        Session {
            segmenter,
            buffer: VecDeque::new(),
            base: 0,
            budget,
        }
    }

    /// The session's admission budget, if one is configured.
    pub(crate) fn budget_mut(&mut self) -> Option<&mut TokenBucket> {
        self.budget.as_mut()
    }

    /// Feeds one frame; when it closes a gesture, assembles the
    /// segment's sample from the buffered frames. The sample side is
    /// `None` when noise canceling rejects the closed segment
    /// (mirroring the offline pipeline's drop rule) — the segment is
    /// still reported so drop rates are observable.
    pub(crate) fn push(
        &mut self,
        frame: Frame,
        pre: &Preprocessor,
    ) -> Option<(GestureSegment, Option<GestureSample>)> {
        let segment = self.segmenter.push_frame(&frame);
        self.buffer.push_back(frame);
        let out = segment.map(|seg| (seg, self.assemble(seg, pre)));
        self.trim();
        out
    }

    /// Closes a gesture still open at end of stream, if any.
    pub(crate) fn finish(
        &mut self,
        pre: &Preprocessor,
    ) -> Option<(GestureSegment, Option<GestureSample>)> {
        let segment = self.segmenter.finish();
        segment.map(|seg| (seg, self.assemble(seg, pre)))
    }

    /// Total frames pushed into this session.
    pub(crate) fn frames_seen(&self) -> usize {
        self.segmenter.frames_seen()
    }

    /// Number of frames currently retained (bounded while idle).
    pub(crate) fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn assemble(&mut self, seg: GestureSegment, pre: &Preprocessor) -> Option<GestureSample> {
        debug_assert!(
            seg.start >= self.base,
            "segment start {} precedes trimmed buffer base {}",
            seg.start,
            self.base
        );
        let lo = seg.start - self.base;
        let hi = seg.end - self.base;
        let frames = self.buffer.make_contiguous();
        pre.assemble(&frames[lo..hi], seg.start)
    }

    /// Drops frames no future segment can reference (see
    /// [`OnlineSegmenter::earliest_needed`]).
    fn trim(&mut self) {
        let keep_from = self.segmenter.earliest_needed();
        while self.base < keep_from && !self.buffer.is_empty() {
            self.buffer.pop_front();
            self.base += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_pipeline::{PreprocessorConfig, SegmenterConfig};
    use gp_pointcloud::{Point, PointCloud, Vec3};

    fn frame(i: usize, points: usize) -> Frame {
        let cloud: PointCloud = (0..points)
            .map(|k| Point::new(Vec3::new(k as f64 * 0.05, 1.2, 1.0), 0.4, 15.0))
            .collect();
        Frame::new(i as f64 * 0.1, cloud)
    }

    #[test]
    fn idle_stream_keeps_buffer_bounded() {
        let cfg = SegmenterConfig::default();
        let motion_window = cfg.motion_window;
        let mut session = Session::new(OnlineSegmenter::new(cfg), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        for i in 0..5_000 {
            assert!(session.push(frame(i, 1), &pre).is_none());
            assert!(
                session.buffered() <= motion_window + 1,
                "idle buffer grew to {} at frame {i}",
                session.buffered()
            );
        }
        assert_eq!(session.frames_seen(), 5_000);
    }

    #[test]
    fn burst_yields_one_assembled_sample() {
        let mut session = Session::new(OnlineSegmenter::new(SegmenterConfig::default()), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        let mut out = Vec::new();
        for i in 0..70 {
            let points = if (20..45).contains(&i) { 14 } else { 1 };
            out.extend(session.push(frame(i, points), &pre));
        }
        out.extend(session.finish(&pre));
        assert_eq!(out.len(), 1, "expected exactly one segment");
        let (seg, sample) = &out[0];
        let sample = sample.as_ref().expect("noise canceling keeps the burst");
        assert!((18..=24).contains(&seg.start), "start {}", seg.start);
        assert_eq!(sample.start_frame, seg.start);
        assert_eq!(sample.duration_frames, seg.len());
        assert!(!sample.cloud.is_empty());
    }

    #[test]
    fn gesture_open_at_stream_end_is_flushed() {
        let mut session = Session::new(OnlineSegmenter::new(SegmenterConfig::default()), None);
        let pre = Preprocessor::new(PreprocessorConfig::default());
        let mut out = Vec::new();
        for i in 0..45 {
            let points = if i >= 30 { 14 } else { 1 };
            out.extend(session.push(frame(i, points), &pre));
        }
        assert!(out.is_empty(), "gesture still open");
        out.extend(session.finish(&pre));
        assert_eq!(out.len(), 1);
    }
}
