//! Streaming multi-session serving for GesturePrint.
//!
//! The paper's system runs *inside* a live mmWave deployment: frames
//! arrive continuously at 10 fps and every detected gesture is
//! classified twice (which gesture, which user). This crate turns the
//! offline reproduction into that serving path:
//!
//! * **Session registry** ([`ServeEngine`]) — multiplexes many
//!   concurrent radar streams; each session runs
//!   [`gp_pipeline::OnlineSegmenter`], the incremental port of the
//!   offline sliding-window segmenter, over its frames as they arrive,
//!   with a bounded frame buffer (idle streams retain only the motion
//!   window).
//! * **Micro-batching executor** — segments that close are preprocessed
//!   and collected *across sessions* into batches of up to
//!   [`ServeConfig::max_batch`], then run through
//!   [`gestureprint_core::GesturePrint::infer_batch`] on the shared
//!   work-stealing [`gp_runtime::WorkerPool`]. Submission is bounded:
//!   once [`ServeConfig::pending_high_watermark`] segments are pending
//!   or in flight, `push_frame` blocks the producer (backpressure)
//!   instead of growing the queue without limit, while
//!   [`ServeEngine::try_push_frame`] *sheds* the frame instead — for
//!   producers that must never stall — counting it in the session's
//!   [`SessionStats::shed_frames`].
//! * **Per-session admission** ([`AdmissionConfig`]) — an optional
//!   token bucket charged *before* the shared gate, in that order: a
//!   `Budget` rejection is definitive (the tenant is over its own rate,
//!   counted in [`SessionStats::shed_budget`]), while a `Capacity`
//!   rejection refunds the token, so transient engine-wide overload is
//!   never billed to an in-budget tenant. [`ServeEngine::offer_frame`]
//!   exposes the staged decision (admitted / rejected with the frame
//!   handed back) for fronts like `gp-net` that want to defer rather
//!   than drop on capacity.
//! * **Event/result bus** ([`ServeEvent`], [`ServeStats`]) — classified
//!   segments flow out with per-session frame/segment/result counters
//!   and segment-to-result latency percentiles (p50/p99), backed by
//!   mergeable `gp_telemetry` histograms.
//! * **Backend-agnostic sessions** — a session declares its sensing
//!   modality at open: [`ServeEngine::open_session`] streams point
//!   clouds, [`ServeEngine::open_rd_session`] streams range-Doppler
//!   frames through [`gp_rd::OnlineRdSegmenter`] and infers them on
//!   the engine's attached RD system
//!   ([`ServeEngine::with_rd_system`]). Mixed batches partition by
//!   backend and publish in the same `(session, seq)` order. Hybrid
//!   sessions ([`ServeEngine::push_paired_frame`]) buffer both
//!   representations and re-route a sparse point-cloud segment to the
//!   RD backend ([`ServeConfig::rd_fallback_min_points`]) — the
//!   ensemble/fallback policy for gestures whose near-zero radial
//!   velocity fragments the point cloud.
//! * **Observability** — with [`ServeConfig::telemetry`] on (the
//!   default), every frame's span is timed through the five pipeline
//!   stages (admission-wait → segmentation → queue-wait → inference →
//!   publish) into a shared [`gp_telemetry::Registry`];
//!   [`ServeStats::stages`] exposes the breakdown, and
//!   [`ServeEngine::telemetry_snapshot`] exports the registry (stage
//!   histograms, pool utilization, gate-depth gauges) as a versioned
//!   [`gp_telemetry::TelemetrySnapshot`].
//!
//! # Example
//!
//! ```no_run
//! use gp_serve::{ServeConfig, ServeEngine};
//! # fn demo(system: gestureprint_core::GesturePrint, frames: Vec<gp_radar::Frame>) {
//! let engine = ServeEngine::new(system, ServeConfig::default());
//! let session = engine.open_session();
//! for frame in frames {
//!     engine.push_frame(session, frame);
//! }
//! engine.close_session(session);
//! for event in engine.drain() {
//!     println!(
//!         "{}: frames [{}, {}) → gesture {} by user {} ({:?})",
//!         event.session,
//!         event.segment.start,
//!         event.segment.end,
//!         event.inference.gesture,
//!         event.inference.user,
//!         event.latency,
//!     );
//! }
//! # }
//! ```
//!
//! Replaying a recording frame-by-frame through the engine yields the
//! same segment boundaries as the offline
//! [`gp_pipeline::Preprocessor`] on the whole recording — enforced by
//! `tests/parity.rs` — and predictions are identical across 1 and N
//! worker threads because inference is a pure per-sample function.

pub mod bus;
pub mod engine;
pub mod session;

pub use bus::{IdentityOutcome, ServeEvent, ServeStats, SessionStats, StageBreakdown};
pub use engine::{Admission, AdmissionConfig, RejectReason, ServeConfig, ServeEngine, SessionMode};
// Sessions are representation-agnostic: a session declares its sensing
// backend at open (`open_session` = point cloud, `open_rd_session` =
// range-Doppler) and every event reports which backend inferred it.
pub use gestureprint_core::SensingBackend;
// The RD frame/segmenter types flow through `push_rd_frame` and
// `ServeConfig::rd_segmenter`; re-exported so serving callers can
// construct them without naming gp-rd directly.
pub use gp_rd::{RdFrame, RdSegmentConfig};
// The identity store is co-owned with callers (enrollment tooling,
// gp-net fronts); re-exported so they can construct one without
// naming gp-store directly.
pub use gp_store::{IdentityStore, RegistryConfig};
// The observability layer is shared with gp-net and gp-runtime;
// re-exported so serving callers can name snapshot/histogram types.
pub use gp_telemetry::{Histogram, Registry, SpanId, TelemetrySnapshot};
// The execution substrate lives in `gp-runtime` (shared with training
// and the dataset builder); re-exported for serving callers.
pub use gp_runtime::{Gate, WorkerPool};
pub use session::SessionId;
