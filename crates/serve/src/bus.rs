//! The serve event/result bus and per-session latency accounting.
//!
//! Workers publish one [`ServeEvent`] per classified segment; the bus
//! also keeps running per-session counters (frames in, segments
//! detected, results out) and a per-session [`Histogram`] of
//! segment-to-result latencies that backs the p50/p99 numbers in
//! [`ServeStats`]. Histograms are bounded-memory and merge *exactly*,
//! so folding evicted sessions into the aggregate weighs every sample
//! once — unlike the fixed sample ring this replaced, where later
//! sessions' samples silently overwrote earlier ones.

use crate::session::SessionId;
use gestureprint_core::{Inference, SensingBackend};
use gp_pipeline::GestureSegment;
use gp_telemetry::{Histogram, SpanId};
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One classified gesture segment flowing out of the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Session the segment came from.
    pub session: SessionId,
    /// Global dispatch sequence number (ascending within a session in
    /// segment order).
    pub seq: u64,
    /// Stage-tracing span minted when the frame that closed this
    /// segment was admitted.
    pub span: SpanId,
    /// Segment boundaries in the session's absolute frame indices.
    pub segment: GestureSegment,
    /// Which sensing backend inferred this segment — range-Doppler for
    /// RD sessions and for sparse point-cloud segments the hybrid
    /// fallback re-routed.
    pub backend: SensingBackend,
    /// The two-task inference result (gesture + user + probabilities).
    pub inference: Inference,
    /// What the identity store did with this segment — `None` for
    /// plain classification sessions or when the engine has no store.
    pub identity: Option<IdentityOutcome>,
    /// Segment-detected → result-published latency.
    pub latency: Duration,
}

/// The identity store's verdict on one segment, for sessions in an
/// enrollment or identification mode (see
/// [`crate::engine::SessionMode`]).
#[derive(Debug, Clone, PartialEq)]
pub enum IdentityOutcome {
    /// The segment's embedding was folded into `user`'s gallery
    /// template.
    Enrolled {
        /// The user enrolled into.
        user: String,
        /// That user's gallery sample count after this enrollment.
        samples: u64,
    },
    /// Open-set identification accepted the nearest gallery user.
    Identified {
        /// The accepted user.
        user: String,
        /// Distance from the probe embedding to that user's centroid.
        distance: f64,
    },
    /// Open-set identification rejected the probe: nobody in the
    /// gallery was within the calibrated threshold.
    Unknown {
        /// Distance to the nearest (rejected) centroid, when the
        /// gallery was not empty.
        distance: Option<f64>,
    },
}

#[derive(Debug, Default, Clone)]
struct SessionCounters {
    frames: u64,
    segments: u64,
    /// Segments whose sample survived noise canceling and was enqueued
    /// for inference — the session is *settled* once `results` catches
    /// up with this.
    enqueued: u64,
    results: u64,
    /// Frames dropped by load shedding
    /// ([`crate::ServeEngine::try_push_frame`] on a saturated engine).
    shed_frames: u64,
    /// Frames dropped by the session's own admission budget.
    shed_budget: u64,
    /// Frames a front-end deferred (admission retried later) because
    /// the engine was saturated while the session was within budget.
    deferred: u64,
    /// Segments whose embedding was enrolled into the identity store's
    /// gallery on behalf of this session.
    enrolled: u64,
    /// Segment-to-result latency histogram: bounded memory, every
    /// sample weighed (no reservoir sampling).
    latency: Histogram,
}

#[derive(Debug, Default)]
struct BusInner {
    events: Vec<ServeEvent>,
    sessions: BTreeMap<SessionId, SessionCounters>,
    /// Closed sessions in close order (tagged with their close epoch),
    /// awaiting possible eviction.
    closed: std::collections::VecDeque<(u64, SessionId)>,
    /// Monotonic count of [`EventBus::mark_closed`] calls; each closed
    /// entry carries the value at its close as an eligibility epoch.
    closes: u64,
    /// Aggregate of evicted closed sessions (so totals stay correct
    /// after their per-session entries are dropped).
    evicted: SessionCounters,
    /// Number of closed sessions folded into `evicted`.
    evicted_sessions: u64,
    /// Segments dispatched to workers whose result has not been
    /// published yet.
    in_flight: usize,
}

/// Internal bus shared by the engine and its workers.
#[derive(Debug, Default)]
pub(crate) struct EventBus {
    inner: Mutex<BusInner>,
    idle: Condvar,
}

impl EventBus {
    fn lock(&self) -> std::sync::MutexGuard<'_, BusInner> {
        self.inner.lock().expect("event bus poisoned")
    }

    pub(crate) fn register_session(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default();
    }

    /// Persists a closed session's final frame count (live sessions
    /// keep the count in their own state, off the per-frame hot path).
    pub(crate) fn set_frames(&self, id: SessionId, frames: u64) {
        self.lock().sessions.entry(id).or_default().frames = frames;
    }

    pub(crate) fn record_segment(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().segments += 1;
    }

    /// Records one segment enqueued for inference.
    pub(crate) fn record_enqueued(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().enqueued += 1;
    }

    /// Records one frame dropped by load shedding.
    pub(crate) fn record_shed_frame(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().shed_frames += 1;
    }

    /// Records one frame dropped by the session's own admission budget.
    pub(crate) fn record_shed_budget(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().shed_budget += 1;
    }

    /// Records one frame a front-end deferred for later re-admission.
    pub(crate) fn record_deferred(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().deferred += 1;
    }

    /// Records one segment enrolled into the identity gallery.
    pub(crate) fn record_enrolled(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().enrolled += 1;
    }

    /// Whether every segment the session enqueued has published its
    /// result. Sessions already folded into the evicted aggregate were
    /// settled by construction (eviction requires final accounting).
    pub(crate) fn is_settled(&self, id: SessionId) -> bool {
        self.lock()
            .sessions
            .get(&id)
            .is_none_or(|c| c.results == c.enqueued)
    }

    /// Records that a session was closed; it becomes a candidate for
    /// [`EventBus::sweep_closed`]. Callers must mark a session closed
    /// only *after* enqueuing its final segment, so any sweep whose
    /// eligibility epoch covers this close also covers that segment.
    pub(crate) fn mark_closed(&self, id: SessionId) {
        let mut inner = self.lock();
        let epoch = inner.closes;
        inner.closes += 1;
        inner.closed.push_back((epoch, id));
    }

    /// The current close epoch — a snapshot taken *before* a flush
    /// bounds which closed sessions that drain may evict.
    pub(crate) fn close_epoch(&self) -> u64 {
        self.lock().closes
    }

    /// Folds the oldest closed sessions into the evicted aggregate
    /// until at most `retain` closed sessions keep their own entry,
    /// considering only sessions closed before `up_to_epoch`.
    ///
    /// The epoch bound is what makes eviction race-free against
    /// concurrent `close_session` calls: the engine snapshots
    /// [`EventBus::close_epoch`] before `flush`, so every eligible
    /// session's final segment was dispatched by that flush and
    /// published before `wait_idle` returned — its counters are final,
    /// folding them keeps every aggregate total exact, and a published
    /// result can never resurrect an evicted session's entry.
    pub(crate) fn sweep_closed(&self, retain: usize, up_to_epoch: u64) {
        let mut inner = self.lock();
        while inner.closed.len() > retain
            && inner
                .closed
                .front()
                .is_some_and(|&(epoch, _)| epoch < up_to_epoch)
        {
            let (_, id) = inner.closed.pop_front().expect("front checked above");
            if let Some(c) = inner.sessions.remove(&id) {
                inner.evicted_sessions += 1;
                inner.evicted.frames += c.frames;
                inner.evicted.segments += c.segments;
                inner.evicted.enqueued += c.enqueued;
                inner.evicted.results += c.results;
                inner.evicted.shed_frames += c.shed_frames;
                inner.evicted.shed_budget += c.shed_budget;
                inner.evicted.deferred += c.deferred;
                inner.evicted.enrolled += c.enrolled;
                // Exact: bucket-wise addition. The old sample ring
                // overwrote older evicted sessions' samples here,
                // skewing the aggregate percentiles towards whichever
                // session was folded last.
                inner.evicted.latency.merge(&c.latency);
            }
        }
    }

    pub(crate) fn add_in_flight(&self, n: usize) {
        self.lock().in_flight += n;
    }

    /// Releases one in-flight slot *without* publishing a result — the
    /// safety valve for a worker that panicked mid-batch, so
    /// [`EventBus::wait_idle`] cannot hang on a lost segment.
    pub(crate) fn forfeit_in_flight(&self) {
        let mut inner = self.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        drop(inner);
        self.idle.notify_all();
    }

    pub(crate) fn publish(&self, event: ServeEvent) {
        let mut inner = self.lock();
        let counters = inner.sessions.entry(event.session).or_default();
        counters.results += 1;
        counters.latency.record_duration(event.latency);
        inner.events.push(event);
        inner.in_flight = inner.in_flight.saturating_sub(1);
        drop(inner);
        self.idle.notify_all();
    }

    /// Blocks until every dispatched segment has published (or
    /// forfeited) its result.
    pub(crate) fn wait_idle(&self) {
        let mut inner = self.lock();
        while inner.in_flight > 0 {
            inner = self.idle.wait(inner).expect("event bus poisoned");
        }
    }

    /// Drains all published events.
    pub(crate) fn take_events(&self) -> Vec<ServeEvent> {
        std::mem::take(&mut self.lock().events)
    }

    /// Snapshot of one session's counters without cloning the whole
    /// bus — the per-goodbye path for network fronts, O(1) in the
    /// number of sessions.
    pub(crate) fn session_stats(&self, id: SessionId) -> Option<SessionStats> {
        self.lock().sessions.get(&id).map(snapshot)
    }

    /// Snapshot of the accumulated per-session statistics.
    pub(crate) fn stats(&self) -> ServeStats {
        let inner = self.lock();
        ServeStats {
            sessions: inner
                .sessions
                .iter()
                .map(|(&id, c)| (id, snapshot(c)))
                .collect(),
            evicted_sessions: inner.evicted_sessions,
            evicted: snapshot(&inner.evicted),
            // Stage histograms live in the engine's telemetry, not on
            // the bus; `ServeEngine::stats` fills them in.
            stages: StageBreakdown::default(),
        }
    }
}

/// Builds the public [`SessionStats`] view of one session's counters.
fn snapshot(c: &SessionCounters) -> SessionStats {
    SessionStats {
        frames: c.frames,
        segments: c.segments,
        enqueued: c.enqueued,
        results: c.results,
        shed_frames: c.shed_frames,
        shed_budget: c.shed_budget,
        deferred: c.deferred,
        enrolled: c.enrolled,
        latency: c.latency.clone(),
    }
}

/// Accumulated counters for one session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Frames pushed into the session — every one of these was
    /// *admitted* (shed frames never enter the session).
    pub frames: u64,
    /// Segments the online segmenter closed, including those noise
    /// canceling then dropped — `segments - results` is the session's
    /// drop count once its batches have drained.
    pub segments: u64,
    /// Segments whose sample survived noise canceling and was enqueued
    /// for inference. Once a session is closed, `results == enqueued`
    /// means its accounting is final
    /// ([`crate::ServeEngine::session_settled`]).
    pub enqueued: u64,
    /// Classified results published for the session.
    pub results: u64,
    /// Frames dropped because the *engine* was saturated: offered
    /// through [`crate::ServeEngine::try_push_frame`] while the global
    /// gate was full. Not included in [`SessionStats::frames`] — shed
    /// frames never enter the session.
    pub shed_frames: u64,
    /// Frames dropped by the session's *own* admission budget
    /// ([`crate::AdmissionConfig`]): the over-rate tenant pays for its
    /// excess itself. Also never included in [`SessionStats::frames`].
    pub shed_budget: u64,
    /// Frames a network front deferred at least once (engine saturated
    /// while the session was within budget) before they were admitted.
    /// Deferred frames that were eventually admitted *are* counted in
    /// [`SessionStats::frames`].
    pub deferred: u64,
    /// Segments whose embedding this session enrolled into the
    /// identity gallery (sessions in an enrollment mode only).
    pub enrolled: u64,
    /// Segment-to-result latency histogram (µs buckets): every result
    /// is weighed, memory stays fixed, and histograms from different
    /// sessions merge exactly.
    pub latency: Histogram,
}

impl SessionStats {
    /// Frames admitted into the session — an alias for
    /// [`SessionStats::frames`], named for the admission ledger
    /// (`admitted + shed_frames + shed_budget` = frames offered).
    pub fn admitted(&self) -> u64 {
        self.frames
    }

    /// Frames dropped for any reason (engine saturation plus the
    /// session's own budget).
    pub fn shed_total(&self) -> u64 {
        self.shed_frames + self.shed_budget
    }

    /// The `p`-th latency percentile (`0.0..=100.0`), nearest-rank over
    /// the histogram buckets: exact at the extremes, within one
    /// sub-bucket (≤25%, never under-reporting) elsewhere.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        self.latency.percentile_duration(p)
    }
}

/// Per-stage latency breakdown along the span path: where a result's
/// end-to-end latency actually went. Filled from the engine's
/// gp-telemetry stage histograms; empty when telemetry is disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    /// Frame ingest → admission decision (session-lock contention plus
    /// budget/gate probes).
    pub admission_wait: Histogram,
    /// Online segmentation + preprocessing of the admitted frame.
    pub segmentation: Histogram,
    /// Segment enqueued → batch claimed by a worker.
    pub queue_wait: Histogram,
    /// Batch inference time as each result experienced it (the whole
    /// batch's, not an N-th share).
    pub inference: Histogram,
    /// Inference end → result event published on the bus.
    pub publish: Histogram,
}

impl StageBreakdown {
    /// The stages in span order, with their histogram names as
    /// registered in the telemetry registry.
    pub fn named(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("admission_wait", &self.admission_wait),
            ("segmentation", &self.segmentation),
            ("queue_wait", &self.queue_wait),
            ("inference", &self.inference),
            ("publish", &self.publish),
        ]
    }
}

/// A point-in-time snapshot of the engine's accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Per-session counters, keyed by session id. Live sessions plus
    /// the most recently closed ones; older closed sessions are folded
    /// into [`ServeStats::evicted`].
    pub sessions: BTreeMap<SessionId, SessionStats>,
    /// Closed sessions whose per-session entries were evicted.
    pub evicted_sessions: u64,
    /// Aggregate counters of the evicted sessions — included in every
    /// `total_*` so eviction never changes the totals.
    pub evicted: SessionStats,
    /// Per-stage latency breakdown (admission-wait, segmentation,
    /// queue-wait, inference, publish), p50/p99 per stage via each
    /// histogram's [`Histogram::percentile`]. Empty histograms when
    /// [`crate::ServeConfig::telemetry`] is off.
    pub stages: StageBreakdown,
}

impl ServeStats {
    /// Total frames pushed across all sessions (evicted included).
    pub fn total_frames(&self) -> u64 {
        self.sessions.values().map(|s| s.frames).sum::<u64>() + self.evicted.frames
    }

    /// Total segments closed across all sessions (evicted included, and
    /// including segments noise canceling then dropped).
    pub fn total_segments(&self) -> u64 {
        self.sessions.values().map(|s| s.segments).sum::<u64>() + self.evicted.segments
    }

    /// Total results published across all sessions (evicted included).
    pub fn total_results(&self) -> u64 {
        self.sessions.values().map(|s| s.results).sum::<u64>() + self.evicted.results
    }

    /// Total frames dropped by engine-saturation load shedding across
    /// all sessions (evicted included).
    pub fn total_shed_frames(&self) -> u64 {
        self.sessions.values().map(|s| s.shed_frames).sum::<u64>() + self.evicted.shed_frames
    }

    /// Total frames dropped by per-session admission budgets across all
    /// sessions (evicted included).
    pub fn total_shed_budget(&self) -> u64 {
        self.sessions.values().map(|s| s.shed_budget).sum::<u64>() + self.evicted.shed_budget
    }

    /// Total frames deferred at least once by a network front before
    /// admission (evicted included).
    pub fn total_deferred(&self) -> u64 {
        self.sessions.values().map(|s| s.deferred).sum::<u64>() + self.evicted.deferred
    }

    /// Total segments enrolled into the identity gallery across all
    /// sessions (evicted included).
    pub fn total_enrolled(&self) -> u64 {
        self.sessions.values().map(|s| s.enrolled).sum::<u64>() + self.evicted.enrolled
    }

    /// The `p`-th segment-to-result latency percentile across all
    /// sessions, evicted aggregate included — an exact merge of every
    /// session's histogram.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        self.pooled_latency().percentile_duration(p)
    }

    /// The exact merge of every session's latency histogram (evicted
    /// aggregate included).
    pub fn pooled_latency(&self) -> Histogram {
        let mut pooled = self.evicted.latency.clone();
        for s in self.sessions.values() {
            pooled.merge(&s.latency);
        }
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn hist_of(samples: &[Duration]) -> Histogram {
        let mut h = Histogram::new();
        for &d in samples {
            h.record_duration(d);
        }
        h
    }

    #[test]
    fn stats_aggregate_across_sessions() {
        let stats = ServeStats {
            sessions: [
                (
                    SessionId(1),
                    SessionStats {
                        frames: 10,
                        segments: 2,
                        results: 2,
                        latency: hist_of(&[ms(1), ms(3)]),
                        ..Default::default()
                    },
                ),
                (
                    SessionId(2),
                    SessionStats {
                        frames: 5,
                        segments: 1,
                        results: 1,
                        latency: hist_of(&[ms(2)]),
                        ..Default::default()
                    },
                ),
            ]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        assert_eq!(stats.total_frames(), 15);
        assert_eq!(stats.total_results(), 3);
        // Percentiles bracket the true nearest-rank value: exact at
        // the extremes, within one log-linear sub-bucket in between.
        let p50 = stats.latency_percentile(50.0).unwrap();
        assert!(p50 >= ms(2) && p50 <= ms(2) + ms(2) / 4, "p50 = {p50:?}");
        assert_eq!(stats.latency_percentile(100.0), Some(ms(3)));
        assert_eq!(stats.latency_percentile(0.0), Some(ms(1)));
        assert_eq!(stats.pooled_latency().count(), 3);
    }

    #[test]
    fn eviction_merges_latency_histograms_exactly() {
        // Regression test for the old fixed-ring aggregate: folding
        // two evicted sessions with > ring-size samples each used to
        // leave only the *last* session's samples in the aggregate,
        // reporting its latency as the evicted p50/p99. Histograms
        // merge bucket-wise, so the pooled percentiles weigh every
        // session's every sample.
        let bus = EventBus::default();
        let (fast, slow) = (SessionId(1), SessionId(2));
        for id in [fast, slow] {
            bus.register_session(id);
        }
        for i in 0..600u64 {
            for (id, latency) in [(fast, ms(1)), (slow, ms(100))] {
                bus.add_in_flight(1);
                bus.publish(ServeEvent {
                    session: id,
                    seq: i,
                    span: SpanId(i),
                    segment: GestureSegment {
                        start: i as usize,
                        end: i as usize + 1,
                    },
                    backend: SensingBackend::PointCloud,
                    inference: Inference {
                        gesture: 0,
                        user: 0,
                        gesture_probs: Vec::new(),
                        user_probs: Vec::new(),
                    },
                    identity: None,
                    latency,
                });
            }
        }
        bus.mark_closed(fast);
        bus.mark_closed(slow);
        bus.sweep_closed(0, bus.close_epoch());

        let stats = bus.stats();
        assert_eq!(stats.evicted_sessions, 2);
        // Every sample survived the fold…
        assert_eq!(stats.evicted.latency.count(), 1200);
        // …so the merged distribution still sees the fast session:
        // half the mass is at 1 ms (the ring would have reported
        // ~100 ms here), and the extremes are exact.
        let p25 = stats.evicted.latency_percentile(25.0).unwrap();
        assert!(p25 <= ms(1) + ms(1) / 4, "p25 = {p25:?} skewed high");
        assert_eq!(stats.evicted.latency_percentile(0.0), Some(ms(1)));
        assert_eq!(stats.evicted.latency_percentile(100.0), Some(ms(100)));
        let p99 = stats.evicted.latency_percentile(99.0).unwrap();
        assert!(
            p99 >= ms(100) && p99 <= ms(100) + ms(100) / 4,
            "p99 = {p99:?}"
        );
    }

    #[test]
    fn sweep_folds_oldest_closed_sessions_into_aggregate() {
        let bus = EventBus::default();
        for i in 0..5u64 {
            let id = SessionId(i);
            bus.register_session(id);
            bus.set_frames(id, 10 + i);
            bus.record_segment(id);
            bus.mark_closed(id);
        }
        let before = bus.stats();
        assert_eq!(before.sessions.len(), 5);
        let (frames, segments) = (before.total_frames(), before.total_segments());

        bus.sweep_closed(2, bus.close_epoch());
        let after = bus.stats();
        // The two most recently closed keep their entries…
        assert_eq!(
            after.sessions.keys().copied().collect::<Vec<_>>(),
            vec![SessionId(3), SessionId(4)]
        );
        assert_eq!(after.evicted_sessions, 3);
        // …and every aggregate total is unchanged by eviction.
        assert_eq!(after.total_frames(), frames);
        assert_eq!(after.total_segments(), segments);

        // Sweeping again with room to spare is a no-op.
        bus.sweep_closed(2, bus.close_epoch());
        assert_eq!(bus.stats(), after);
    }

    #[test]
    fn sweep_respects_the_eligibility_epoch() {
        let bus = EventBus::default();
        for i in 0..3u64 {
            bus.register_session(SessionId(i));
            bus.mark_closed(SessionId(i));
        }
        let snapshot = bus.close_epoch();
        // Sessions closed after the snapshot (a racing `close_session`)
        // must survive a sweep bounded by it, even with `retain: 0`.
        for i in 3..6u64 {
            bus.register_session(SessionId(i));
            bus.mark_closed(SessionId(i));
        }
        bus.sweep_closed(0, snapshot);
        let stats = bus.stats();
        assert_eq!(stats.evicted_sessions, 3);
        assert_eq!(
            stats.sessions.keys().copied().collect::<Vec<_>>(),
            vec![SessionId(3), SessionId(4), SessionId(5)]
        );
    }

    #[test]
    fn wait_idle_returns_after_forfeit() {
        let bus = EventBus::default();
        bus.add_in_flight(2);
        bus.forfeit_in_flight();
        bus.forfeit_in_flight();
        bus.wait_idle(); // must not hang
        assert!(bus.take_events().is_empty());
    }
}
