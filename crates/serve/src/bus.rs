//! The serve event/result bus and per-session latency accounting.
//!
//! Workers publish one [`ServeEvent`] per classified segment; the bus
//! also keeps running per-session counters (frames in, segments
//! detected, results out) and the segment-to-result latency samples that
//! back the p50/p99 numbers in [`ServeStats`].

use crate::session::SessionId;
use gestureprint_core::Inference;
use gp_pipeline::GestureSegment;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One classified gesture segment flowing out of the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Session the segment came from.
    pub session: SessionId,
    /// Global dispatch sequence number (ascending within a session in
    /// segment order).
    pub seq: u64,
    /// Segment boundaries in the session's absolute frame indices.
    pub segment: GestureSegment,
    /// The two-task inference result (gesture + user + probabilities).
    pub inference: Inference,
    /// Segment-detected → result-published latency.
    pub latency: Duration,
}

/// Cap on retained latency samples per session: a ring of the most
/// recent measurements, so a long-lived session's accounting stays
/// bounded while percentiles still reflect current behaviour.
const LATENCY_RESERVOIR: usize = 512;

#[derive(Debug, Default, Clone)]
struct SessionCounters {
    frames: u64,
    segments: u64,
    /// Segments whose sample survived noise canceling and was enqueued
    /// for inference — the session is *settled* once `results` catches
    /// up with this.
    enqueued: u64,
    results: u64,
    /// Frames dropped by load shedding
    /// ([`crate::ServeEngine::try_push_frame`] on a saturated engine).
    shed_frames: u64,
    /// Frames dropped by the session's own admission budget.
    shed_budget: u64,
    /// Frames a front-end deferred (admission retried later) because
    /// the engine was saturated while the session was within budget.
    deferred: u64,
    latencies: Vec<Duration>,
    /// Ring cursor once `latencies` reaches [`LATENCY_RESERVOIR`].
    next_latency: usize,
}

impl SessionCounters {
    fn record_latency(&mut self, latency: Duration) {
        if self.latencies.len() < LATENCY_RESERVOIR {
            self.latencies.push(latency);
        } else {
            self.latencies[self.next_latency] = latency;
            self.next_latency = (self.next_latency + 1) % LATENCY_RESERVOIR;
        }
    }
}

#[derive(Debug, Default)]
struct BusInner {
    events: Vec<ServeEvent>,
    sessions: BTreeMap<SessionId, SessionCounters>,
    /// Closed sessions in close order (tagged with their close epoch),
    /// awaiting possible eviction.
    closed: std::collections::VecDeque<(u64, SessionId)>,
    /// Monotonic count of [`EventBus::mark_closed`] calls; each closed
    /// entry carries the value at its close as an eligibility epoch.
    closes: u64,
    /// Aggregate of evicted closed sessions (so totals stay correct
    /// after their per-session entries are dropped).
    evicted: SessionCounters,
    /// Number of closed sessions folded into `evicted`.
    evicted_sessions: u64,
    /// Segments dispatched to workers whose result has not been
    /// published yet.
    in_flight: usize,
}

/// Internal bus shared by the engine and its workers.
#[derive(Debug, Default)]
pub(crate) struct EventBus {
    inner: Mutex<BusInner>,
    idle: Condvar,
}

impl EventBus {
    fn lock(&self) -> std::sync::MutexGuard<'_, BusInner> {
        self.inner.lock().expect("event bus poisoned")
    }

    pub(crate) fn register_session(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default();
    }

    /// Persists a closed session's final frame count (live sessions
    /// keep the count in their own state, off the per-frame hot path).
    pub(crate) fn set_frames(&self, id: SessionId, frames: u64) {
        self.lock().sessions.entry(id).or_default().frames = frames;
    }

    pub(crate) fn record_segment(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().segments += 1;
    }

    /// Records one segment enqueued for inference.
    pub(crate) fn record_enqueued(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().enqueued += 1;
    }

    /// Records one frame dropped by load shedding.
    pub(crate) fn record_shed_frame(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().shed_frames += 1;
    }

    /// Records one frame dropped by the session's own admission budget.
    pub(crate) fn record_shed_budget(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().shed_budget += 1;
    }

    /// Records one frame a front-end deferred for later re-admission.
    pub(crate) fn record_deferred(&self, id: SessionId) {
        self.lock().sessions.entry(id).or_default().deferred += 1;
    }

    /// Whether every segment the session enqueued has published its
    /// result. Sessions already folded into the evicted aggregate were
    /// settled by construction (eviction requires final accounting).
    pub(crate) fn is_settled(&self, id: SessionId) -> bool {
        self.lock()
            .sessions
            .get(&id)
            .is_none_or(|c| c.results == c.enqueued)
    }

    /// Records that a session was closed; it becomes a candidate for
    /// [`EventBus::sweep_closed`]. Callers must mark a session closed
    /// only *after* enqueuing its final segment, so any sweep whose
    /// eligibility epoch covers this close also covers that segment.
    pub(crate) fn mark_closed(&self, id: SessionId) {
        let mut inner = self.lock();
        let epoch = inner.closes;
        inner.closes += 1;
        inner.closed.push_back((epoch, id));
    }

    /// The current close epoch — a snapshot taken *before* a flush
    /// bounds which closed sessions that drain may evict.
    pub(crate) fn close_epoch(&self) -> u64 {
        self.lock().closes
    }

    /// Folds the oldest closed sessions into the evicted aggregate
    /// until at most `retain` closed sessions keep their own entry,
    /// considering only sessions closed before `up_to_epoch`.
    ///
    /// The epoch bound is what makes eviction race-free against
    /// concurrent `close_session` calls: the engine snapshots
    /// [`EventBus::close_epoch`] before `flush`, so every eligible
    /// session's final segment was dispatched by that flush and
    /// published before `wait_idle` returned — its counters are final,
    /// folding them keeps every aggregate total exact, and a published
    /// result can never resurrect an evicted session's entry.
    pub(crate) fn sweep_closed(&self, retain: usize, up_to_epoch: u64) {
        let mut inner = self.lock();
        while inner.closed.len() > retain
            && inner
                .closed
                .front()
                .is_some_and(|&(epoch, _)| epoch < up_to_epoch)
        {
            let (_, id) = inner.closed.pop_front().expect("front checked above");
            if let Some(c) = inner.sessions.remove(&id) {
                inner.evicted_sessions += 1;
                inner.evicted.frames += c.frames;
                inner.evicted.segments += c.segments;
                inner.evicted.enqueued += c.enqueued;
                inner.evicted.results += c.results;
                inner.evicted.shed_frames += c.shed_frames;
                inner.evicted.shed_budget += c.shed_budget;
                inner.evicted.deferred += c.deferred;
                for &latency in &c.latencies {
                    inner.evicted.record_latency(latency);
                }
            }
        }
    }

    pub(crate) fn add_in_flight(&self, n: usize) {
        self.lock().in_flight += n;
    }

    /// Releases one in-flight slot *without* publishing a result — the
    /// safety valve for a worker that panicked mid-batch, so
    /// [`EventBus::wait_idle`] cannot hang on a lost segment.
    pub(crate) fn forfeit_in_flight(&self) {
        let mut inner = self.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        drop(inner);
        self.idle.notify_all();
    }

    pub(crate) fn publish(&self, event: ServeEvent) {
        let mut inner = self.lock();
        let counters = inner.sessions.entry(event.session).or_default();
        counters.results += 1;
        counters.record_latency(event.latency);
        inner.events.push(event);
        inner.in_flight = inner.in_flight.saturating_sub(1);
        drop(inner);
        self.idle.notify_all();
    }

    /// Blocks until every dispatched segment has published (or
    /// forfeited) its result.
    pub(crate) fn wait_idle(&self) {
        let mut inner = self.lock();
        while inner.in_flight > 0 {
            inner = self.idle.wait(inner).expect("event bus poisoned");
        }
    }

    /// Drains all published events.
    pub(crate) fn take_events(&self) -> Vec<ServeEvent> {
        std::mem::take(&mut self.lock().events)
    }

    /// Snapshot of one session's counters without cloning the whole
    /// bus — the per-goodbye path for network fronts, O(1) in the
    /// number of sessions.
    pub(crate) fn session_stats(&self, id: SessionId) -> Option<SessionStats> {
        self.lock().sessions.get(&id).map(snapshot)
    }

    /// Snapshot of the accumulated per-session statistics.
    pub(crate) fn stats(&self) -> ServeStats {
        let inner = self.lock();
        ServeStats {
            sessions: inner
                .sessions
                .iter()
                .map(|(&id, c)| (id, snapshot(c)))
                .collect(),
            evicted_sessions: inner.evicted_sessions,
            evicted: snapshot(&inner.evicted),
        }
    }
}

/// Builds the public [`SessionStats`] view of one session's counters.
fn snapshot(c: &SessionCounters) -> SessionStats {
    let mut latencies = c.latencies.clone();
    latencies.sort_unstable();
    SessionStats {
        frames: c.frames,
        segments: c.segments,
        enqueued: c.enqueued,
        results: c.results,
        shed_frames: c.shed_frames,
        shed_budget: c.shed_budget,
        deferred: c.deferred,
        latencies,
    }
}

/// Accumulated counters for one session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Frames pushed into the session — every one of these was
    /// *admitted* (shed frames never enter the session).
    pub frames: u64,
    /// Segments the online segmenter closed, including those noise
    /// canceling then dropped — `segments - results` is the session's
    /// drop count once its batches have drained.
    pub segments: u64,
    /// Segments whose sample survived noise canceling and was enqueued
    /// for inference. Once a session is closed, `results == enqueued`
    /// means its accounting is final
    /// ([`crate::ServeEngine::session_settled`]).
    pub enqueued: u64,
    /// Classified results published for the session.
    pub results: u64,
    /// Frames dropped because the *engine* was saturated: offered
    /// through [`crate::ServeEngine::try_push_frame`] while the global
    /// gate was full. Not included in [`SessionStats::frames`] — shed
    /// frames never enter the session.
    pub shed_frames: u64,
    /// Frames dropped by the session's *own* admission budget
    /// ([`crate::AdmissionConfig`]): the over-rate tenant pays for its
    /// excess itself. Also never included in [`SessionStats::frames`].
    pub shed_budget: u64,
    /// Frames a network front deferred at least once (engine saturated
    /// while the session was within budget) before they were admitted.
    /// Deferred frames that were eventually admitted *are* counted in
    /// [`SessionStats::frames`].
    pub deferred: u64,
    /// Sorted segment-to-result latency samples (the most recent
    /// measurements, capped at a fixed reservoir size).
    pub latencies: Vec<Duration>,
}

impl SessionStats {
    /// Frames admitted into the session — an alias for
    /// [`SessionStats::frames`], named for the admission ledger
    /// (`admitted + shed_frames + shed_budget` = frames offered).
    pub fn admitted(&self) -> u64 {
        self.frames
    }

    /// Frames dropped for any reason (engine saturation plus the
    /// session's own budget).
    pub fn shed_total(&self) -> u64 {
        self.shed_frames + self.shed_budget
    }

    /// The `p`-th latency percentile (`0.0..=100.0`), nearest-rank over
    /// the recorded samples.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        percentile(&self.latencies, p)
    }
}

/// A point-in-time snapshot of the engine's accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Per-session counters, keyed by session id. Live sessions plus
    /// the most recently closed ones; older closed sessions are folded
    /// into [`ServeStats::evicted`].
    pub sessions: BTreeMap<SessionId, SessionStats>,
    /// Closed sessions whose per-session entries were evicted.
    pub evicted_sessions: u64,
    /// Aggregate counters of the evicted sessions — included in every
    /// `total_*` so eviction never changes the totals.
    pub evicted: SessionStats,
}

impl ServeStats {
    /// Total frames pushed across all sessions (evicted included).
    pub fn total_frames(&self) -> u64 {
        self.sessions.values().map(|s| s.frames).sum::<u64>() + self.evicted.frames
    }

    /// Total segments closed across all sessions (evicted included, and
    /// including segments noise canceling then dropped).
    pub fn total_segments(&self) -> u64 {
        self.sessions.values().map(|s| s.segments).sum::<u64>() + self.evicted.segments
    }

    /// Total results published across all sessions (evicted included).
    pub fn total_results(&self) -> u64 {
        self.sessions.values().map(|s| s.results).sum::<u64>() + self.evicted.results
    }

    /// Total frames dropped by engine-saturation load shedding across
    /// all sessions (evicted included).
    pub fn total_shed_frames(&self) -> u64 {
        self.sessions.values().map(|s| s.shed_frames).sum::<u64>() + self.evicted.shed_frames
    }

    /// Total frames dropped by per-session admission budgets across all
    /// sessions (evicted included).
    pub fn total_shed_budget(&self) -> u64 {
        self.sessions.values().map(|s| s.shed_budget).sum::<u64>() + self.evicted.shed_budget
    }

    /// Total frames deferred at least once by a network front before
    /// admission (evicted included).
    pub fn total_deferred(&self) -> u64 {
        self.sessions.values().map(|s| s.deferred).sum::<u64>() + self.evicted.deferred
    }

    /// The `p`-th segment-to-result latency percentile across all
    /// sessions, including the evicted aggregate's retained samples.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        let mut all: Vec<Duration> = self
            .sessions
            .values()
            .chain(std::iter::once(&self.evicted))
            .flat_map(|s| s.latencies.iter().copied())
            .collect();
        all.sort_unstable();
        percentile(&all, p)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[Duration], p: f64) -> Option<Duration> {
    if sorted.is_empty() {
        return None;
    }
    let clamped = p.clamp(0.0, 100.0);
    let idx = ((clamped / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    Some(sorted[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&sorted, 0.0), Some(ms(1)));
        assert_eq!(percentile(&sorted, 50.0), Some(ms(51))); // round(49.5) = 50
        assert_eq!(percentile(&sorted, 99.0), Some(ms(99)));
        assert_eq!(percentile(&sorted, 100.0), Some(ms(100)));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[ms(7)], 99.0), Some(ms(7)));
    }

    #[test]
    fn stats_aggregate_across_sessions() {
        let stats = ServeStats {
            sessions: [
                (
                    SessionId(1),
                    SessionStats {
                        frames: 10,
                        segments: 2,
                        results: 2,
                        latencies: vec![ms(1), ms(3)],
                        ..Default::default()
                    },
                ),
                (
                    SessionId(2),
                    SessionStats {
                        frames: 5,
                        segments: 1,
                        results: 1,
                        latencies: vec![ms(2)],
                        ..Default::default()
                    },
                ),
            ]
            .into_iter()
            .collect(),
            ..Default::default()
        };
        assert_eq!(stats.total_frames(), 15);
        assert_eq!(stats.total_results(), 3);
        assert_eq!(stats.latency_percentile(50.0), Some(ms(2)));
        assert_eq!(stats.latency_percentile(100.0), Some(ms(3)));
    }

    #[test]
    fn latency_reservoir_is_bounded() {
        let mut counters = SessionCounters::default();
        for i in 0..(LATENCY_RESERVOIR as u64 + 100) {
            counters.record_latency(ms(i));
        }
        assert_eq!(counters.latencies.len(), LATENCY_RESERVOIR);
        // The ring overwrote the oldest samples with the newest.
        assert!(counters
            .latencies
            .contains(&ms(LATENCY_RESERVOIR as u64 + 99)));
        assert!(!counters.latencies.contains(&ms(0)));
    }

    #[test]
    fn sweep_folds_oldest_closed_sessions_into_aggregate() {
        let bus = EventBus::default();
        for i in 0..5u64 {
            let id = SessionId(i);
            bus.register_session(id);
            bus.set_frames(id, 10 + i);
            bus.record_segment(id);
            bus.mark_closed(id);
        }
        let before = bus.stats();
        assert_eq!(before.sessions.len(), 5);
        let (frames, segments) = (before.total_frames(), before.total_segments());

        bus.sweep_closed(2, bus.close_epoch());
        let after = bus.stats();
        // The two most recently closed keep their entries…
        assert_eq!(
            after.sessions.keys().copied().collect::<Vec<_>>(),
            vec![SessionId(3), SessionId(4)]
        );
        assert_eq!(after.evicted_sessions, 3);
        // …and every aggregate total is unchanged by eviction.
        assert_eq!(after.total_frames(), frames);
        assert_eq!(after.total_segments(), segments);

        // Sweeping again with room to spare is a no-op.
        bus.sweep_closed(2, bus.close_epoch());
        assert_eq!(bus.stats(), after);
    }

    #[test]
    fn sweep_respects_the_eligibility_epoch() {
        let bus = EventBus::default();
        for i in 0..3u64 {
            bus.register_session(SessionId(i));
            bus.mark_closed(SessionId(i));
        }
        let snapshot = bus.close_epoch();
        // Sessions closed after the snapshot (a racing `close_session`)
        // must survive a sweep bounded by it, even with `retain: 0`.
        for i in 3..6u64 {
            bus.register_session(SessionId(i));
            bus.mark_closed(SessionId(i));
        }
        bus.sweep_closed(0, snapshot);
        let stats = bus.stats();
        assert_eq!(stats.evicted_sessions, 3);
        assert_eq!(
            stats.sessions.keys().copied().collect::<Vec<_>>(),
            vec![SessionId(3), SessionId(4), SessionId(5)]
        );
    }

    #[test]
    fn wait_idle_returns_after_forfeit() {
        let bus = EventBus::default();
        bus.add_in_flight(2);
        bus.forfeit_in_flight();
        bus.forfeit_in_flight();
        bus.wait_idle(); // must not hang
        assert!(bus.take_events().is_empty());
    }
}
