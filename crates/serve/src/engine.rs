//! The streaming engine: session registry + micro-batching executor.
//!
//! Frames from many concurrent radar streams are pushed into per-session
//! [`OnlineSegmenter`]s; segments that close are preprocessed and queued
//! as jobs. The executor collects jobs *across sessions* into
//! micro-batches of up to [`ServeConfig::max_batch`] segments and runs
//! each batch through [`GesturePrint::infer_batch`] on the work-stealing
//! [`WorkerPool`], so a burst on one stream and trickles on ten others
//! still fill batches and keep every core busy.
//!
//! Determinism: inference is a pure per-sample function, so predictions
//! are identical regardless of worker count or how segments were split
//! into batches — only event *arrival order* varies, and
//! [`ServeEngine::drain`] sorts events by `(session, seq)` to remove
//! even that.

use crate::bus::{EventBus, ServeEvent, ServeStats};
use crate::session::{Session, SessionId};
use gestureprint_core::GesturePrint;
use gp_pipeline::{
    GestureSegment, LabeledSample, OnlineSegmenter, Preprocessor, PreprocessorConfig,
};
use gp_radar::Frame;
use gp_runtime::{Gate, WorkerPool};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Preprocessing (segmentation + noise canceling) shared by all
    /// sessions.
    pub preprocessor: PreprocessorConfig,
    /// Micro-batch size cap: a batch dispatches to the pool as soon as
    /// this many segments are pending (partial batches dispatch on
    /// [`ServeEngine::flush`] / [`ServeEngine::drain`]).
    pub max_batch: usize,
    /// Worker threads for the executor (`0` = available parallelism).
    pub workers: usize,
    /// Backpressure high watermark: the maximum number of segments
    /// dispatched but not yet published. Once reached, the thread that
    /// closes the next batch blocks in `push_frame`/`flush` until the
    /// executor drains below the watermark, so a producer that outpaces
    /// inference cannot grow the queue without limit. (A batch larger
    /// than the watermark is still admitted when the queue is empty.)
    pub pending_high_watermark: usize,
    /// How many *closed* sessions keep their own [`crate::bus::SessionStats`]
    /// entry. Older closed sessions are folded into the evicted
    /// aggregate on [`ServeEngine::drain`], keeping totals correct while
    /// bounding per-session state for millions of short-lived streams.
    pub retain_closed_sessions: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            preprocessor: PreprocessorConfig::default(),
            max_batch: 8,
            workers: 0,
            pending_high_watermark: 256,
            retain_closed_sessions: 1024,
        }
    }
}

impl gp_codec::Encode for ServeConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("preprocessor", self.preprocessor.encode()),
            ("max_batch", self.max_batch.encode()),
            ("workers", self.workers.encode()),
            (
                "pending_high_watermark",
                self.pending_high_watermark.encode(),
            ),
            (
                "retain_closed_sessions",
                self.retain_closed_sessions.encode(),
            ),
        ])
    }
}

impl gp_codec::Decode for ServeConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(ServeConfig {
            preprocessor: value.get("preprocessor")?,
            max_batch: value.get("max_batch")?,
            workers: value.get("workers")?,
            pending_high_watermark: value.get("pending_high_watermark")?,
            retain_closed_sessions: value.get("retain_closed_sessions")?,
        })
    }
}

/// One preprocessed segment waiting for (or undergoing) inference.
struct SegmentJob {
    session: SessionId,
    seq: u64,
    segment: GestureSegment,
    /// Labels are inference-ignored placeholders (`0, 0`): the serving
    /// path classifies unlabeled live segments.
    sample: LabeledSample,
    detected: Instant,
}

/// The streaming multi-session inference engine.
///
/// All methods take `&self`. Per-frame work locks only the stream's own
/// session mutex (the registry is read-locked for the lookup, which
/// concurrent drivers share); global locks are touched only when a
/// segment closes.
pub struct ServeEngine {
    system: Arc<GesturePrint>,
    config: ServeConfig,
    preprocessor: Preprocessor,
    pool: WorkerPool,
    /// Bounded-submission gate: weight = segments dispatched but not
    /// yet published.
    gate: Arc<Gate>,
    sessions: RwLock<HashMap<SessionId, Arc<Mutex<Session>>>>,
    pending: Mutex<VecDeque<SegmentJob>>,
    next_session: AtomicU64,
    next_seq: AtomicU64,
    bus: Arc<EventBus>,
}

impl ServeEngine {
    /// Creates an engine serving a trained system.
    pub fn new(system: GesturePrint, config: ServeConfig) -> Self {
        let pool = WorkerPool::new(config.workers);
        let gate = Arc::new(Gate::new(config.pending_high_watermark));
        let preprocessor = Preprocessor::new(config.preprocessor.clone());
        ServeEngine {
            system: Arc::new(system),
            config,
            preprocessor,
            pool,
            gate,
            sessions: RwLock::new(HashMap::new()),
            pending: Mutex::new(VecDeque::new()),
            next_session: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            bus: Arc::new(EventBus::default()),
        }
    }

    /// The trained system being served.
    pub fn system(&self) -> &GesturePrint {
        &self.system
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of executor worker threads.
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Segments dispatched to the executor whose result has not been
    /// published yet — bounded by
    /// [`ServeConfig::pending_high_watermark`] (except a single
    /// oversized batch admitted on an empty queue).
    pub fn outstanding(&self) -> usize {
        self.gate.outstanding()
    }

    /// Opens a new stream session and returns its id.
    pub fn open_session(&self) -> SessionId {
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed));
        let segmenter = OnlineSegmenter::new(self.config.preprocessor.segmenter.clone());
        self.sessions
            .write()
            .expect("session registry poisoned")
            .insert(id, Arc::new(Mutex::new(Session::new(segmenter))));
        self.bus.register_session(id);
        id
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions
            .read()
            .expect("session registry poisoned")
            .len()
    }

    /// `(frames seen, frames currently buffered)` for a live session —
    /// the buffer stays bounded while the stream idles.
    pub fn session_frames(&self, id: SessionId) -> Option<(usize, usize)> {
        let session = self.session(id)?;
        let session = session.lock().expect("session poisoned");
        Some((session.frames_seen(), session.buffered()))
    }

    fn session(&self, id: SessionId) -> Option<Arc<Mutex<Session>>> {
        self.sessions
            .read()
            .expect("session registry poisoned")
            .get(&id)
            .cloned()
    }

    /// Feeds one frame into a session; returns the number of segments
    /// this frame completed (0 or 1). Segments whose sample noise
    /// canceling rejects count here (and in [`ServeStats`]) but publish
    /// no result.
    ///
    /// Full micro-batches dispatch to the worker pool immediately;
    /// results surface later via [`ServeEngine::drain`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live session.
    pub fn push_frame(&self, id: SessionId, frame: Frame) -> usize {
        let session = self
            .session(id)
            .unwrap_or_else(|| panic!("push_frame on unknown {id}"));
        let completed = {
            let mut session = session.lock().expect("session poisoned");
            let completed = session.push(frame, &self.preprocessor);
            // Sequence numbers are drawn while the session lock is still
            // held, so concurrent pushers to one session cannot invert
            // the per-session `seq` order `drain` sorts by.
            completed.map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)))
        };
        self.record_completed(id, completed)
    }

    /// Load-shedding variant of [`ServeEngine::push_frame`]: a
    /// saturated engine *drops* the frame instead of risking a blocking
    /// dispatch, so an over-rate producer degrades (loses frames) rather
    /// than stalls.
    ///
    /// Admission control reserves a full batch's worth of headroom
    /// under the backpressure gate via [`Gate::try_acquire`]. When
    /// `max_batch` more segments would not fit below
    /// [`ServeConfig::pending_high_watermark`], the frame is shed:
    /// it never enters the session (not counted in
    /// [`crate::SessionStats::frames`]), the session's
    /// [`crate::SessionStats::shed_frames`] counter increments, and
    /// `None` is returned. When admitted, the frame proceeds exactly
    /// like [`ServeEngine::push_frame`], and because the reserved
    /// headroom covers the largest possible batch, a dispatch this
    /// frame triggers never blocks a lone producer. (Producers racing
    /// each other can still briefly block on the gate between admission
    /// and dispatch — bounded by one batch in flight.)
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live session.
    pub fn try_push_frame(&self, id: SessionId, frame: Frame) -> Option<usize> {
        let headroom = self.config.max_batch.max(1);
        if !self.gate.try_acquire(headroom) {
            // Enforce liveness on the shed path too: recording a shed
            // for a closed session would resurrect its (possibly
            // already evicted) stats entry outside the eviction
            // protocol, and the documented panic must not depend on
            // which branch a frame takes.
            assert!(self.session(id).is_some(), "try_push_frame on unknown {id}");
            self.bus.record_shed_frame(id);
            return None;
        }
        self.gate.release(headroom);
        Some(self.push_frame(id, frame))
    }

    /// Closes a session: flushes a gesture still open at stream end and
    /// removes the session from the registry. Returns the number of
    /// segments the close completed (0 or 1). Statistics and queued
    /// results survive the close.
    pub fn close_session(&self, id: SessionId) -> usize {
        let session = self
            .sessions
            .write()
            .expect("session registry poisoned")
            .remove(&id);
        let Some(session) = session else { return 0 };
        let (finished, frames_seen) = {
            let mut session = session.lock().expect("session poisoned");
            let finished = session
                .finish(&self.preprocessor)
                .map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)));
            (finished, session.frames_seen())
        };
        // The registry entry is gone; enqueue the final segment (if
        // any) and persist the stream's final frame count *before*
        // marking the session closed: `mark_closed` makes the session
        // eligible for stats eviction, and eviction's correctness rests
        // on everything the session will ever account for being
        // enqueued by then (see [`crate::bus::EventBus::sweep_closed`]).
        let completed = self.record_completed(id, finished);
        self.bus.set_frames(id, frames_seen as u64);
        self.bus.mark_closed(id);
        completed
    }

    /// Accounts for a possibly-closed segment: records it, and enqueues
    /// its sample for inference when noise canceling kept one.
    fn record_completed(
        &self,
        id: SessionId,
        completed: Option<((GestureSegment, Option<gp_pipeline::GestureSample>), u64)>,
    ) -> usize {
        match completed {
            Some(((segment, sample), seq)) => {
                self.bus.record_segment(id);
                if let Some(sample) = sample {
                    self.enqueue(id, segment, sample, seq);
                }
                1
            }
            None => 0,
        }
    }

    fn enqueue(
        &self,
        id: SessionId,
        segment: GestureSegment,
        sample: gp_pipeline::GestureSample,
        seq: u64,
    ) {
        let job = SegmentJob {
            session: id,
            seq,
            segment,
            sample: LabeledSample::from_sample(sample, 0, 0),
            detected: Instant::now(),
        };
        // Collect under the lock, dispatch after releasing it: dispatch
        // touches the bus and the pool, and other sessions' segment
        // closes must not serialize behind that.
        let batch = {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            pending.push_back(job);
            if pending.len() >= self.config.max_batch.max(1) {
                Some(pending.drain(..).collect::<Vec<SegmentJob>>())
            } else {
                None
            }
        };
        if let Some(batch) = batch {
            self.dispatch(batch);
        }
    }

    /// Dispatches any pending partial micro-batch.
    pub fn flush(&self) {
        let batch: Vec<SegmentJob> = {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            pending.drain(..).collect()
        };
        if !batch.is_empty() {
            self.dispatch(batch);
        }
    }

    fn dispatch(&self, batch: Vec<SegmentJob>) {
        // Backpressure: block here — on the producer that closed the
        // batch — while the executor already has a high watermark's
        // worth of segments outstanding.
        self.gate.acquire(batch.len());
        self.bus.add_in_flight(batch.len());
        let system = self.system.clone();
        let bus = self.bus.clone();
        let gate = self.gate.clone();
        self.pool.spawn(move || {
            // Guard: if inference panics, release the batch's gate
            // weight and in-flight slots so neither blocked producers
            // nor `drain` can hang on lost segments.
            struct Forfeit {
                bus: Arc<EventBus>,
                gate: Arc<gp_runtime::Gate>,
                remaining: usize,
            }
            impl Drop for Forfeit {
                fn drop(&mut self) {
                    self.gate.release(self.remaining);
                    for _ in 0..self.remaining {
                        self.bus.forfeit_in_flight();
                    }
                }
            }
            let mut guard = Forfeit {
                bus: bus.clone(),
                gate,
                remaining: batch.len(),
            };
            let samples: Vec<&LabeledSample> = batch.iter().map(|j| &j.sample).collect();
            let inferences = system.infer_batch(&samples);
            for (job, inference) in batch.iter().zip(inferences) {
                guard.remaining -= 1;
                // Gate weight releases *before* the publish: once
                // `wait_idle` observes every result, the gate is
                // provably back to zero (`drain` relies on this).
                guard.gate.release(1);
                bus.publish(ServeEvent {
                    session: job.session,
                    seq: job.seq,
                    segment: job.segment,
                    inference,
                    latency: job.detected.elapsed(),
                });
            }
        });
    }

    /// Flushes pending segments, waits for all in-flight batches, and
    /// returns every event published since the last drain, sorted by
    /// `(session, seq)` for deterministic consumption.
    pub fn drain(&self) -> Vec<ServeEvent> {
        // Eviction eligibility is snapshotted *before* the flush: a
        // session closed before this point has already enqueued its
        // final segment (see `close_session`), so the flush dispatches
        // it and `wait_idle` sees its result published — its accounting
        // is final. Sessions closed concurrently after the snapshot
        // simply wait for the next drain.
        let eligible = self.bus.close_epoch();
        self.flush();
        self.bus.wait_idle();
        self.bus
            .sweep_closed(self.config.retain_closed_sessions, eligible);
        let mut events = self.bus.take_events();
        events.sort_by_key(|e| (e.session, e.seq));
        events
    }

    /// Snapshot of per-session and aggregate statistics.
    ///
    /// Frame counts live in each session's own state (off the per-frame
    /// hot path); live sessions are folded in here, closed sessions were
    /// persisted at close time.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.bus.stats();
        let sessions = self.sessions.read().expect("session registry poisoned");
        for (&id, session) in sessions.iter() {
            let frames = session.lock().expect("session poisoned").frames_seen() as u64;
            stats.sessions.entry(id).or_default().frames = frames;
        }
        stats
    }
}
