//! The streaming engine: session registry + micro-batching executor.
//!
//! Frames from many concurrent radar streams are pushed into per-session
//! [`OnlineSegmenter`]s; segments that close are preprocessed and queued
//! as jobs. The executor collects jobs *across sessions* into
//! micro-batches of up to [`ServeConfig::max_batch`] segments and runs
//! each batch through [`GesturePrint::infer_batch`] on the work-stealing
//! [`WorkerPool`], so a burst on one stream and trickles on ten others
//! still fill batches and keep every core busy.
//!
//! Determinism: inference is a pure per-sample function, so predictions
//! are identical regardless of worker count or how segments were split
//! into batches — only event *arrival order* varies, and
//! [`ServeEngine::drain`] sorts events by `(session, seq)` to remove
//! even that.

use crate::bus::{EventBus, ServeEvent, ServeStats};
use crate::pool::WorkerPool;
use crate::session::{Session, SessionId};
use gestureprint_core::GesturePrint;
use gp_pipeline::{
    GestureSegment, LabeledSample, OnlineSegmenter, Preprocessor, PreprocessorConfig,
};
use gp_radar::Frame;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Preprocessing (segmentation + noise canceling) shared by all
    /// sessions.
    pub preprocessor: PreprocessorConfig,
    /// Micro-batch size cap: a batch dispatches to the pool as soon as
    /// this many segments are pending (partial batches dispatch on
    /// [`ServeEngine::flush`] / [`ServeEngine::drain`]).
    pub max_batch: usize,
    /// Worker threads for the executor (`0` = available parallelism).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            preprocessor: PreprocessorConfig::default(),
            max_batch: 8,
            workers: 0,
        }
    }
}

/// One preprocessed segment waiting for (or undergoing) inference.
struct SegmentJob {
    session: SessionId,
    seq: u64,
    segment: GestureSegment,
    /// Labels are inference-ignored placeholders (`0, 0`): the serving
    /// path classifies unlabeled live segments.
    sample: LabeledSample,
    detected: Instant,
}

/// The streaming multi-session inference engine.
///
/// All methods take `&self`. Per-frame work locks only the stream's own
/// session mutex (the registry is read-locked for the lookup, which
/// concurrent drivers share); global locks are touched only when a
/// segment closes.
pub struct ServeEngine {
    system: Arc<GesturePrint>,
    config: ServeConfig,
    preprocessor: Preprocessor,
    pool: WorkerPool,
    sessions: RwLock<HashMap<SessionId, Arc<Mutex<Session>>>>,
    pending: Mutex<VecDeque<SegmentJob>>,
    next_session: AtomicU64,
    next_seq: AtomicU64,
    bus: Arc<EventBus>,
}

impl ServeEngine {
    /// Creates an engine serving a trained system.
    pub fn new(system: GesturePrint, config: ServeConfig) -> Self {
        let pool = WorkerPool::new(config.workers);
        let preprocessor = Preprocessor::new(config.preprocessor.clone());
        ServeEngine {
            system: Arc::new(system),
            config,
            preprocessor,
            pool,
            sessions: RwLock::new(HashMap::new()),
            pending: Mutex::new(VecDeque::new()),
            next_session: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            bus: Arc::new(EventBus::default()),
        }
    }

    /// The trained system being served.
    pub fn system(&self) -> &GesturePrint {
        &self.system
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of executor worker threads.
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Opens a new stream session and returns its id.
    pub fn open_session(&self) -> SessionId {
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed));
        let segmenter = OnlineSegmenter::new(self.config.preprocessor.segmenter.clone());
        self.sessions
            .write()
            .expect("session registry poisoned")
            .insert(id, Arc::new(Mutex::new(Session::new(segmenter))));
        self.bus.register_session(id);
        id
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions
            .read()
            .expect("session registry poisoned")
            .len()
    }

    /// `(frames seen, frames currently buffered)` for a live session —
    /// the buffer stays bounded while the stream idles.
    pub fn session_frames(&self, id: SessionId) -> Option<(usize, usize)> {
        let session = self.session(id)?;
        let session = session.lock().expect("session poisoned");
        Some((session.frames_seen(), session.buffered()))
    }

    fn session(&self, id: SessionId) -> Option<Arc<Mutex<Session>>> {
        self.sessions
            .read()
            .expect("session registry poisoned")
            .get(&id)
            .cloned()
    }

    /// Feeds one frame into a session; returns the number of segments
    /// this frame completed (0 or 1). Segments whose sample noise
    /// canceling rejects count here (and in [`ServeStats`]) but publish
    /// no result.
    ///
    /// Full micro-batches dispatch to the worker pool immediately;
    /// results surface later via [`ServeEngine::drain`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live session.
    pub fn push_frame(&self, id: SessionId, frame: Frame) -> usize {
        let session = self
            .session(id)
            .unwrap_or_else(|| panic!("push_frame on unknown {id}"));
        let completed = {
            let mut session = session.lock().expect("session poisoned");
            let completed = session.push(frame, &self.preprocessor);
            // Sequence numbers are drawn while the session lock is still
            // held, so concurrent pushers to one session cannot invert
            // the per-session `seq` order `drain` sorts by.
            completed.map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)))
        };
        self.record_completed(id, completed)
    }

    /// Closes a session: flushes a gesture still open at stream end and
    /// removes the session from the registry. Returns the number of
    /// segments the close completed (0 or 1). Statistics and queued
    /// results survive the close.
    pub fn close_session(&self, id: SessionId) -> usize {
        let session = self
            .sessions
            .write()
            .expect("session registry poisoned")
            .remove(&id);
        let Some(session) = session else { return 0 };
        let (finished, frames_seen) = {
            let mut session = session.lock().expect("session poisoned");
            let finished = session
                .finish(&self.preprocessor)
                .map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)));
            (finished, session.frames_seen())
        };
        // The registry entry is gone; persist the stream's final frame
        // count into the bus so statistics survive the close.
        self.bus.set_frames(id, frames_seen as u64);
        self.record_completed(id, finished)
    }

    /// Accounts for a possibly-closed segment: records it, and enqueues
    /// its sample for inference when noise canceling kept one.
    fn record_completed(
        &self,
        id: SessionId,
        completed: Option<((GestureSegment, Option<gp_pipeline::GestureSample>), u64)>,
    ) -> usize {
        match completed {
            Some(((segment, sample), seq)) => {
                self.bus.record_segment(id);
                if let Some(sample) = sample {
                    self.enqueue(id, segment, sample, seq);
                }
                1
            }
            None => 0,
        }
    }

    fn enqueue(
        &self,
        id: SessionId,
        segment: GestureSegment,
        sample: gp_pipeline::GestureSample,
        seq: u64,
    ) {
        let job = SegmentJob {
            session: id,
            seq,
            segment,
            sample: LabeledSample::from_sample(sample, 0, 0),
            detected: Instant::now(),
        };
        // Collect under the lock, dispatch after releasing it: dispatch
        // touches the bus and the pool, and other sessions' segment
        // closes must not serialize behind that.
        let batch = {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            pending.push_back(job);
            if pending.len() >= self.config.max_batch.max(1) {
                Some(pending.drain(..).collect::<Vec<SegmentJob>>())
            } else {
                None
            }
        };
        if let Some(batch) = batch {
            self.dispatch(batch);
        }
    }

    /// Dispatches any pending partial micro-batch.
    pub fn flush(&self) {
        let batch: Vec<SegmentJob> = {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            pending.drain(..).collect()
        };
        if !batch.is_empty() {
            self.dispatch(batch);
        }
    }

    fn dispatch(&self, batch: Vec<SegmentJob>) {
        self.bus.add_in_flight(batch.len());
        let system = self.system.clone();
        let bus = self.bus.clone();
        self.pool.spawn(move || {
            // Guard: if inference panics, release the batch's in-flight
            // slots so `drain` cannot hang on lost segments.
            struct Forfeit {
                bus: Arc<EventBus>,
                remaining: usize,
            }
            impl Drop for Forfeit {
                fn drop(&mut self) {
                    for _ in 0..self.remaining {
                        self.bus.forfeit_in_flight();
                    }
                }
            }
            let mut guard = Forfeit {
                bus: bus.clone(),
                remaining: batch.len(),
            };
            let samples: Vec<&LabeledSample> = batch.iter().map(|j| &j.sample).collect();
            let inferences = system.infer_batch(&samples);
            for (job, inference) in batch.iter().zip(inferences) {
                guard.remaining -= 1;
                bus.publish(ServeEvent {
                    session: job.session,
                    seq: job.seq,
                    segment: job.segment,
                    inference,
                    latency: job.detected.elapsed(),
                });
            }
        });
    }

    /// Flushes pending segments, waits for all in-flight batches, and
    /// returns every event published since the last drain, sorted by
    /// `(session, seq)` for deterministic consumption.
    pub fn drain(&self) -> Vec<ServeEvent> {
        self.flush();
        self.bus.wait_idle();
        let mut events = self.bus.take_events();
        events.sort_by_key(|e| (e.session, e.seq));
        events
    }

    /// Snapshot of per-session and aggregate statistics.
    ///
    /// Frame counts live in each session's own state (off the per-frame
    /// hot path); live sessions are folded in here, closed sessions were
    /// persisted at close time.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.bus.stats();
        let sessions = self.sessions.read().expect("session registry poisoned");
        for (&id, session) in sessions.iter() {
            let frames = session.lock().expect("session poisoned").frames_seen() as u64;
            stats.sessions.entry(id).or_default().frames = frames;
        }
        stats
    }
}
