//! The streaming engine: session registry + micro-batching executor.
//!
//! Frames from many concurrent radar streams are pushed into per-session
//! [`OnlineSegmenter`]s; segments that close are preprocessed and queued
//! as jobs. The executor collects jobs *across sessions* into
//! micro-batches of up to [`ServeConfig::max_batch`] segments and runs
//! each batch through [`GesturePrint::infer_batch`] on the work-stealing
//! [`WorkerPool`], so a burst on one stream and trickles on ten others
//! still fill batches and keep every core busy.
//!
//! Determinism: inference is a pure per-sample function, so predictions
//! are identical regardless of worker count or how segments were split
//! into batches — only event *arrival order* varies, and
//! [`ServeEngine::drain`] sorts events by `(session, seq)` to remove
//! even that.

use crate::bus::{EventBus, IdentityOutcome, ServeEvent, ServeStats, StageBreakdown};
use crate::session::{ClosedSegment, Session, SessionId};
use gestureprint_core::{GesturePrint, Inference, SensingBackend};
use gp_pipeline::{
    GestureSample, GestureSegment, LabeledSample, OnlineSegmenter, Preprocessor, PreprocessorConfig,
};
use gp_radar::Frame;
use gp_rd::{OnlineRdSegmenter, RdFrame, RdLabeledSample, RdSegment, RdSegmentConfig};
use gp_runtime::{Gate, TokenBucket, WorkerPool};
use gp_store::{Identification, IdentityStore};
use gp_telemetry::{AtomicHistogram, Counter, Registry, SpanId, TelemetrySnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Per-session admission budget: a token bucket refilled at
/// [`AdmissionConfig::frames_per_sec`] with capacity
/// [`AdmissionConfig::burst`]. One bucket per session means an
/// over-rate tenant sheds *its own* frames
/// ([`crate::SessionStats::shed_budget`]) instead of consuming the
/// engine-global capacity that quiet sessions rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained admission rate (frames per second).
    pub frames_per_sec: f64,
    /// Burst allowance (frames): how far a tenant may briefly exceed
    /// the sustained rate. Buckets start full.
    pub burst: f64,
}

impl AdmissionConfig {
    /// A budget admitting `frames_per_sec` sustained with `burst`
    /// frames of headroom.
    pub fn new(frames_per_sec: f64, burst: f64) -> Self {
        AdmissionConfig {
            frames_per_sec,
            burst,
        }
    }

    fn bucket(&self) -> TokenBucket {
        TokenBucket::new(self.frames_per_sec, self.burst)
    }
}

impl gp_codec::Encode for AdmissionConfig {
    fn encode(&self) -> gp_codec::Value {
        gp_codec::Value::record([
            ("frames_per_sec", self.frames_per_sec.encode()),
            ("burst", self.burst.encode()),
        ])
    }
}

impl gp_codec::Decode for AdmissionConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(AdmissionConfig {
            frames_per_sec: value.get("frames_per_sec")?,
            burst: value.get("burst")?,
        })
    }
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Preprocessing (segmentation + noise canceling) shared by all
    /// sessions.
    pub preprocessor: PreprocessorConfig,
    /// Micro-batch size cap: a batch dispatches to the pool as soon as
    /// this many segments are pending (partial batches dispatch on
    /// [`ServeEngine::flush`] / [`ServeEngine::drain`]).
    pub max_batch: usize,
    /// Worker threads for the executor (`0` = available parallelism).
    pub workers: usize,
    /// Backpressure high watermark: the maximum number of segments
    /// dispatched but not yet published. Once reached, the thread that
    /// closes the next batch blocks in `push_frame`/`flush` until the
    /// executor drains below the watermark, so a producer that outpaces
    /// inference cannot grow the queue without limit. (A batch larger
    /// than the watermark is still admitted when the queue is empty.)
    pub pending_high_watermark: usize,
    /// How many *closed* sessions keep their own [`crate::bus::SessionStats`]
    /// entry. Older closed sessions are folded into the evicted
    /// aggregate on [`ServeEngine::drain`], keeping totals correct while
    /// bounding per-session state for millions of short-lived streams.
    pub retain_closed_sessions: usize,
    /// Default per-session admission budget applied by
    /// [`ServeEngine::open_session`]; `None` (the default) admits
    /// without a budget. [`ServeEngine::open_session_with`] overrides
    /// this per session (weighted tenants).
    pub admission: Option<AdmissionConfig>,
    /// Whether the engine records per-stage telemetry (span timing
    /// into the gp-telemetry registry). On by default; the overhead
    /// smoke in `gp-bench` pins the cost at < 5% of throughput. Off
    /// disables all stage clocks and the registry itself.
    pub telemetry: bool,
    /// Segmentation thresholds for sessions opened in range-Doppler
    /// mode ([`ServeEngine::open_rd_session`]).
    pub rd_segmenter: RdSegmentConfig,
    /// Sparse-cloud fallback threshold for hybrid sessions driven with
    /// [`ServeEngine::push_paired_frame`]: a closed point-cloud segment
    /// whose sample was rejected by noise canceling, or whose cloud has
    /// fewer than this many points, is re-routed to the range-Doppler
    /// backend instead (counted in `serve.rd.fallback`). `None` (the
    /// default) disables the fallback — paired RD frames are buffered
    /// but never dispatched.
    pub rd_fallback_min_points: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            preprocessor: PreprocessorConfig::default(),
            max_batch: 8,
            workers: 0,
            pending_high_watermark: 256,
            retain_closed_sessions: 1024,
            admission: None,
            telemetry: true,
            rd_segmenter: RdSegmentConfig::default(),
            rd_fallback_min_points: None,
        }
    }
}

impl gp_codec::Encode for ServeConfig {
    fn encode(&self) -> gp_codec::Value {
        let mut fields = vec![
            ("preprocessor", self.preprocessor.encode()),
            ("max_batch", self.max_batch.encode()),
            ("workers", self.workers.encode()),
            (
                "pending_high_watermark",
                self.pending_high_watermark.encode(),
            ),
            (
                "retain_closed_sessions",
                self.retain_closed_sessions.encode(),
            ),
        ];
        // Additive fields: emitted only when non-default, so configs
        // written before they existed re-encode byte-identically (the
        // golden-fixture identity check relies on this).
        if let Some(admission) = &self.admission {
            fields.push(("admission", admission.encode()));
        }
        if !self.telemetry {
            fields.push(("telemetry", self.telemetry.encode()));
        }
        if self.rd_segmenter != RdSegmentConfig::default() {
            fields.push(("rd_segmenter", self.rd_segmenter.encode()));
        }
        if let Some(min_points) = self.rd_fallback_min_points {
            fields.push(("rd_fallback_min_points", min_points.encode()));
        }
        gp_codec::Value::record(fields)
    }
}

impl gp_codec::Decode for ServeConfig {
    fn decode(value: &gp_codec::Value) -> Result<Self, gp_codec::DecodeError> {
        Ok(ServeConfig {
            preprocessor: value.get("preprocessor")?,
            max_batch: value.get("max_batch")?,
            workers: value.get("workers")?,
            pending_high_watermark: value.get("pending_high_watermark")?,
            retain_closed_sessions: value.get("retain_closed_sessions")?,
            admission: value.get_or("admission", None)?,
            telemetry: value.get_or("telemetry", true)?,
            rd_segmenter: value.get_or("rd_segmenter", RdSegmentConfig::default())?,
            rd_fallback_min_points: value.get_or("rd_fallback_min_points", None)?,
        })
    }
}

/// Outcome of offering one frame through two-stage admission
/// ([`ServeEngine::offer_frame`]).
#[derive(Debug)]
pub enum Admission {
    /// The frame entered its session; carries the number of segments it
    /// completed (0 or 1), like [`ServeEngine::push_frame`].
    Admitted(usize),
    /// The frame was refused and is handed back untouched.
    Rejected {
        /// The refused frame, returned so a deferring caller can retry
        /// it without having cloned up front.
        frame: Frame,
        /// Which admission stage refused it.
        reason: RejectReason,
    },
}

/// Which admission stage refused a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The session's own [`AdmissionConfig`] bucket was empty — a
    /// definitive, already-recorded shed charged to the tenant.
    Budget,
    /// The engine-global gate was full while the session was within
    /// budget — transient; the caller may defer and retry.
    Capacity,
}

/// What a session does with the segments it produces, beyond
/// classification. Every session starts in [`SessionMode::Classify`];
/// fronts switch modes via [`ServeEngine::set_session_mode`] (the
/// gp-net `Enroll`/`Identify` wire messages). The mode is snapshotted
/// when a segment closes, so a mode switch never retroactively
/// relabels segments already in flight.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum SessionMode {
    /// Plain gesture + user classification (no identity resolution).
    #[default]
    Classify,
    /// Classify, then fold each segment's embedding into the named
    /// user's gallery template.
    Enroll(String),
    /// Classify, then resolve each segment's embedding open-set
    /// against the gallery.
    Identify,
}

/// The representation-specific half of a [`SegmentJob`]: which backend
/// infers it, with the matching segment and sample types.
enum JobPayload {
    /// A point-cloud segment for [`GesturePrint::infer_batch`]. Labels
    /// are inference-ignored placeholders (`0, 0`): the serving path
    /// classifies unlabeled live segments.
    Point {
        segment: GestureSegment,
        sample: LabeledSample,
    },
    /// A range-Doppler segment for [`GesturePrint::infer_rd_batch`] —
    /// from an RD session, or re-routed from a sparse point-cloud
    /// segment by the hybrid fallback (counted in `serve.rd.fallback`
    /// at enqueue).
    Rd {
        segment: RdSegment,
        sample: RdLabeledSample,
    },
}

/// One preprocessed segment waiting for (or undergoing) inference.
struct SegmentJob {
    session: SessionId,
    seq: u64,
    /// Span of the frame that closed this segment (minted at ingest).
    span: SpanId,
    payload: JobPayload,
    detected: Instant,
    /// When the job entered the batch queue — the clock behind the
    /// `queue_wait` stage histogram.
    enqueued: Instant,
    /// The session's mode when this segment closed.
    mode: SessionMode,
}

/// Per-stage latency histograms: one result's end-to-end latency
/// decomposed along the span's path through the engine.
struct StageMetrics {
    admission_wait: Arc<AtomicHistogram>,
    segmentation: Arc<AtomicHistogram>,
    queue_wait: Arc<AtomicHistogram>,
    inference: Arc<AtomicHistogram>,
    publish: Arc<AtomicHistogram>,
}

impl StageMetrics {
    fn register(registry: &Registry) -> StageMetrics {
        StageMetrics {
            admission_wait: registry.histogram("serve.stage.admission_wait"),
            segmentation: registry.histogram("serve.stage.segmentation"),
            queue_wait: registry.histogram("serve.stage.queue_wait"),
            inference: registry.histogram("serve.stage.inference"),
            publish: registry.histogram("serve.stage.publish"),
        }
    }
}

/// Range-Doppler path counters: frames into RD/hybrid sessions,
/// segments routed to the RD backend, results it published, and how
/// many of those segments were sparse point-cloud fallbacks.
struct RdMetrics {
    frames: Arc<Counter>,
    segments: Arc<Counter>,
    results: Arc<Counter>,
    fallback: Arc<Counter>,
}

impl RdMetrics {
    fn register(registry: &Registry) -> RdMetrics {
        RdMetrics {
            frames: registry.counter("serve.rd.frames"),
            segments: registry.counter("serve.rd.segments"),
            results: registry.counter("serve.rd.results"),
            fallback: registry.counter("serve.rd.fallback"),
        }
    }
}

/// The engine's telemetry half: the shared registry every subsystem
/// publishes into, plus the engine's own stage histograms.
struct EngineTelemetry {
    registry: Arc<Registry>,
    stages: Arc<StageMetrics>,
    rd: Arc<RdMetrics>,
}

/// The streaming multi-session inference engine.
///
/// All methods take `&self`. Per-frame work locks only the stream's own
/// session mutex (the registry is read-locked for the lookup, which
/// concurrent drivers share); global locks are touched only when a
/// segment closes.
pub struct ServeEngine {
    system: Arc<GesturePrint>,
    /// The range-Doppler system, when this engine serves RD or hybrid
    /// sessions ([`ServeEngine::with_rd_system`]).
    rd_system: Option<Arc<GesturePrint>>,
    config: ServeConfig,
    preprocessor: Preprocessor,
    pool: WorkerPool,
    /// Bounded-submission gate: weight = segments dispatched but not
    /// yet published.
    gate: Arc<Gate>,
    sessions: RwLock<HashMap<SessionId, Arc<Mutex<Session>>>>,
    pending: Mutex<VecDeque<SegmentJob>>,
    next_session: AtomicU64,
    next_seq: AtomicU64,
    /// Span ids minted at frame ingest ([`ServeConfig::telemetry`] on
    /// or off — events always carry a span).
    next_span: AtomicU64,
    bus: Arc<EventBus>,
    /// The identity store, when this engine serves enrollment and
    /// open-set identification ([`ServeEngine::with_store`]).
    store: Option<Arc<IdentityStore>>,
    /// Per-session segment handling modes; absent = `Classify`.
    modes: RwLock<HashMap<SessionId, SessionMode>>,
    /// `Some` when [`ServeConfig::telemetry`] is on.
    telemetry: Option<EngineTelemetry>,
    /// Epoch for the admission buckets' caller-supplied clock.
    epoch: Instant,
}

impl ServeEngine {
    /// Creates an engine serving a trained system (no identity store:
    /// sessions classify only).
    pub fn new(system: GesturePrint, config: ServeConfig) -> Self {
        Self::build(system, config, None)
    }

    /// Creates an engine serving a trained system *with* an identity
    /// store: sessions may switch into [`SessionMode::Enroll`] /
    /// [`SessionMode::Identify`] and each such segment is resolved
    /// against the store's gallery after inference. When telemetry is
    /// on, the store's `store.*` instruments are registered in the
    /// engine's shared registry.
    pub fn with_store(
        system: GesturePrint,
        config: ServeConfig,
        store: Arc<IdentityStore>,
    ) -> Self {
        Self::build(system, config, Some(store))
    }

    fn build(system: GesturePrint, config: ServeConfig, store: Option<Arc<IdentityStore>>) -> Self {
        assert_eq!(
            system.backend(),
            SensingBackend::PointCloud,
            "the engine's primary system serves point clouds; attach a \
             range-Doppler system with ServeEngine::with_rd_system"
        );
        let pool = WorkerPool::new(config.workers);
        let gate = Arc::new(Gate::new(config.pending_high_watermark));
        let preprocessor = Preprocessor::new(config.preprocessor.clone());
        let telemetry = config.telemetry.then(|| {
            let registry = Arc::new(Registry::new());
            pool.instrument(&registry, "serve.pool");
            if let Some(store) = &store {
                store.attach_telemetry(&registry);
            }
            let stages = Arc::new(StageMetrics::register(&registry));
            let rd = Arc::new(RdMetrics::register(&registry));
            EngineTelemetry {
                registry,
                stages,
                rd,
            }
        });
        ServeEngine {
            system: Arc::new(system),
            rd_system: None,
            config,
            preprocessor,
            pool,
            gate,
            sessions: RwLock::new(HashMap::new()),
            pending: Mutex::new(VecDeque::new()),
            next_session: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            bus: Arc::new(EventBus::default()),
            store,
            modes: RwLock::new(HashMap::new()),
            telemetry,
            epoch: Instant::now(),
        }
    }

    /// Attaches a trained range-Doppler system, enabling
    /// [`ServeEngine::open_rd_session`] /
    /// [`ServeEngine::push_rd_frame`] and the hybrid sparse-cloud
    /// fallback ([`ServeEngine::push_paired_frame`]). Consumed-builder
    /// style: call between construction and first use.
    ///
    /// # Panics
    ///
    /// Panics if `rd`'s backend is not
    /// [`SensingBackend::RangeDoppler`].
    pub fn with_rd_system(mut self, rd: GesturePrint) -> Self {
        assert_eq!(
            rd.backend(),
            SensingBackend::RangeDoppler,
            "with_rd_system requires a system trained on the range-Doppler backend"
        );
        self.rd_system = Some(Arc::new(rd));
        self
    }

    /// The attached range-Doppler system (`None` for point-cloud-only
    /// engines).
    pub fn rd_system(&self) -> Option<&Arc<GesturePrint>> {
        self.rd_system.as_ref()
    }

    /// The identity store this engine resolves identities through
    /// (`None` for classify-only engines).
    pub fn store(&self) -> Option<&Arc<IdentityStore>> {
        self.store.as_ref()
    }

    /// Switches a live session's segment-handling mode. Returns `false`
    /// (and changes nothing) when the session is not live, or when a
    /// non-[`SessionMode::Classify`] mode is requested on an engine
    /// without an identity store.
    pub fn set_session_mode(&self, id: SessionId, mode: SessionMode) -> bool {
        if self.session(id).is_none() {
            return false;
        }
        if mode != SessionMode::Classify && self.store.is_none() {
            return false;
        }
        self.modes
            .write()
            .expect("mode registry poisoned")
            .insert(id, mode);
        true
    }

    /// The session's current mode ([`SessionMode::Classify`] for
    /// sessions that never switched, or unknown ids).
    pub fn session_mode(&self, id: SessionId) -> SessionMode {
        self.modes
            .read()
            .expect("mode registry poisoned")
            .get(&id)
            .cloned()
            .unwrap_or_default()
    }

    /// The trained system being served.
    pub fn system(&self) -> &GesturePrint {
        &self.system
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Number of executor worker threads.
    pub fn workers(&self) -> usize {
        self.pool.threads()
    }

    /// Segments dispatched to the executor whose result has not been
    /// published yet — bounded by
    /// [`ServeConfig::pending_high_watermark`] (except a single
    /// oversized batch admitted on an empty queue).
    pub fn outstanding(&self) -> usize {
        self.gate.outstanding()
    }

    /// Opens a new stream session (with the engine's default admission
    /// budget, [`ServeConfig::admission`]) and returns its id.
    pub fn open_session(&self) -> SessionId {
        self.open_session_with(self.config.admission)
    }

    /// Opens a new stream session with an explicit admission budget
    /// (`None` = unlimited), overriding [`ServeConfig::admission`] —
    /// the hook for weighted tenants.
    pub fn open_session_with(&self, admission: Option<AdmissionConfig>) -> SessionId {
        let segmenter = OnlineSegmenter::new(self.config.preprocessor.segmenter.clone());
        let budget = admission.map(|a| a.bucket());
        self.register(Session::new_point(segmenter, budget))
    }

    /// Opens a new stream session in range-Doppler mode (with the
    /// engine's default admission budget): the session segments
    /// [`RdFrame`] streams pushed via [`ServeEngine::push_rd_frame`]
    /// and its segments infer through the attached RD system.
    ///
    /// # Panics
    ///
    /// Panics when the engine has no range-Doppler system
    /// ([`ServeEngine::with_rd_system`]).
    pub fn open_rd_session(&self) -> SessionId {
        self.open_rd_session_with(self.config.admission)
    }

    /// Opens a range-Doppler session with an explicit admission budget
    /// (`None` = unlimited) — the RD counterpart of
    /// [`ServeEngine::open_session_with`].
    ///
    /// # Panics
    ///
    /// Panics when the engine has no range-Doppler system.
    pub fn open_rd_session_with(&self, admission: Option<AdmissionConfig>) -> SessionId {
        assert!(
            self.rd_system.is_some(),
            "open_rd_session on an engine without an RD system (ServeEngine::with_rd_system)"
        );
        let segmenter = OnlineRdSegmenter::new(self.config.rd_segmenter.clone());
        let budget = admission.map(|a| a.bucket());
        self.register(Session::new_rd(segmenter, budget))
    }

    fn register(&self, session: Session) -> SessionId {
        let id = SessionId(self.next_session.fetch_add(1, Ordering::Relaxed));
        self.sessions
            .write()
            .expect("session registry poisoned")
            .insert(id, Arc::new(Mutex::new(session)));
        self.bus.register_session(id);
        id
    }

    /// The sensing modality a live session was opened with (`None` for
    /// closed or unknown ids).
    pub fn session_backend(&self, id: SessionId) -> Option<SensingBackend> {
        let session = self.session(id)?;
        let backend = session.lock().expect("session poisoned").backend();
        Some(backend)
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions
            .read()
            .expect("session registry poisoned")
            .len()
    }

    /// `(frames seen, frames currently buffered)` for a live session —
    /// the buffer stays bounded while the stream idles.
    pub fn session_frames(&self, id: SessionId) -> Option<(usize, usize)> {
        let session = self.session(id)?;
        let session = session.lock().expect("session poisoned");
        Some((session.frames_seen(), session.buffered()))
    }

    fn session(&self, id: SessionId) -> Option<Arc<Mutex<Session>>> {
        self.sessions
            .read()
            .expect("session registry poisoned")
            .get(&id)
            .cloned()
    }

    /// Feeds one frame into a session; returns the number of segments
    /// this frame completed (0 or 1). Segments whose sample noise
    /// canceling rejects count here (and in [`ServeStats`]) but publish
    /// no result.
    ///
    /// Full micro-batches dispatch to the worker pool immediately;
    /// results surface later via [`ServeEngine::drain`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live session.
    pub fn push_frame(&self, id: SessionId, frame: Frame) -> usize {
        let session = self
            .session(id)
            .unwrap_or_else(|| panic!("push_frame on unknown {id}"));
        // Frame ingest: mint the stage-tracing span. Stage clocks tick
        // only when telemetry is on.
        let span = self.mint_span();
        let ingest = self.telemetry.as_ref().map(|t| (t, Instant::now()));
        let completed = {
            let mut session = session.lock().expect("session poisoned");
            // `admission_wait` for the direct path is the time spent
            // contending for the session lock (no budget/gate stage).
            let seg_start = ingest.as_ref().map(|(t, start)| {
                t.stages.admission_wait.record_duration(start.elapsed());
                Instant::now()
            });
            let completed = session.push(frame, &self.preprocessor);
            if let (Some((t, _)), Some(seg_start)) = (&ingest, seg_start) {
                t.stages.segmentation.record_duration(seg_start.elapsed());
            }
            // Sequence numbers are drawn while the session lock is still
            // held, so concurrent pushers to one session cannot invert
            // the per-session `seq` order `drain` sorts by.
            completed.map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)))
        };
        self.record_completed(id, completed, span)
    }

    fn mint_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Feeds one range-Doppler frame into an RD session; returns the
    /// number of segments this frame completed (0 or 1) — the RD
    /// counterpart of [`ServeEngine::push_frame`], sharing the same
    /// span clocks (`admission_wait`/`segmentation`) and executor path.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live session, or was not opened in
    /// range-Doppler mode.
    pub fn push_rd_frame(&self, id: SessionId, frame: RdFrame) -> usize {
        let session = self
            .session(id)
            .unwrap_or_else(|| panic!("push_rd_frame on unknown {id}"));
        if let Some(t) = &self.telemetry {
            t.rd.frames.inc();
        }
        let span = self.mint_span();
        let ingest = self.telemetry.as_ref().map(|t| (t, Instant::now()));
        let completed = {
            let mut session = session.lock().expect("session poisoned");
            let seg_start = ingest.as_ref().map(|(t, start)| {
                t.stages.admission_wait.record_duration(start.elapsed());
                Instant::now()
            });
            let completed = session.push_rd(frame);
            if let (Some((t, _)), Some(seg_start)) = (&ingest, seg_start) {
                t.stages.segmentation.record_duration(seg_start.elapsed());
            }
            completed.map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)))
        };
        self.record_completed(id, completed, span)
    }

    /// Feeds one point-cloud frame *plus* the aligned range-Doppler
    /// frame into a hybrid session. The point path segments and infers
    /// exactly as [`ServeEngine::push_frame`]; the RD frames shadow the
    /// point buffer so that when a closed segment's cloud is sparse
    /// (see [`ServeConfig::rd_fallback_min_points`]) the segment is
    /// re-routed to the range-Doppler backend instead of the unreliable
    /// point path. The two streams must be paired from the session's
    /// first frame.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live point-cloud session, if earlier
    /// frames were pushed unpaired, or if the engine has no RD system.
    pub fn push_paired_frame(&self, id: SessionId, frame: Frame, rd: RdFrame) -> usize {
        assert!(
            self.rd_system.is_some(),
            "push_paired_frame requires an RD system (ServeEngine::with_rd_system)"
        );
        let session = self
            .session(id)
            .unwrap_or_else(|| panic!("push_paired_frame on unknown {id}"));
        if let Some(t) = &self.telemetry {
            t.rd.frames.inc();
        }
        let span = self.mint_span();
        let ingest = self.telemetry.as_ref().map(|t| (t, Instant::now()));
        let completed = {
            let mut session = session.lock().expect("session poisoned");
            let seg_start = ingest.as_ref().map(|(t, start)| {
                t.stages.admission_wait.record_duration(start.elapsed());
                Instant::now()
            });
            let completed = session.push_paired(frame, rd, &self.preprocessor);
            if let (Some((t, _)), Some(seg_start)) = (&ingest, seg_start) {
                t.stages.segmentation.record_duration(seg_start.elapsed());
            }
            completed.map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)))
        };
        self.record_completed(id, completed, span)
    }

    /// Load-shedding variant of [`ServeEngine::push_frame`]: a frame
    /// that cannot be admitted is *dropped* instead of risking a
    /// blocking dispatch, so an over-rate producer degrades (loses
    /// frames) rather than stalls.
    ///
    /// Admission runs in two stages, **per-session budget first**:
    ///
    /// 1. The session's own [`AdmissionConfig`] token bucket (when
    ///    configured). An over-budget frame is shed against the tenant
    ///    ([`crate::SessionStats::shed_budget`]) *before* the global
    ///    gate is consulted, so a hot tenant's excess never competes
    ///    for — or is excused by — engine-global capacity.
    /// 2. The engine-global backpressure gate, reserving a full batch's
    ///    worth of headroom via [`Gate::try_acquire`]. When `max_batch`
    ///    more segments would not fit below
    ///    [`ServeConfig::pending_high_watermark`], the frame is shed
    ///    against engine saturation
    ///    ([`crate::SessionStats::shed_frames`]).
    ///
    /// Shed frames never enter the session (not counted in
    /// [`crate::SessionStats::frames`]) and return `None`. When
    /// admitted, the frame proceeds exactly like
    /// [`ServeEngine::push_frame`], and because the reserved headroom
    /// covers the largest possible batch, a dispatch this frame
    /// triggers never blocks a lone producer. (Producers racing each
    /// other can still briefly block on the gate between admission and
    /// dispatch — bounded by one batch in flight.)
    ///
    /// Network fronts that would rather *defer* than shed on engine
    /// saturation use [`ServeEngine::offer_frame`], which hands the
    /// frame back instead of recording a capacity shed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live session.
    pub fn try_push_frame(&self, id: SessionId, frame: Frame) -> Option<usize> {
        match self.offer_frame(id, frame) {
            Admission::Admitted(completed) => Some(completed),
            Admission::Rejected {
                reason: RejectReason::Budget,
                ..
            } => None, // already recorded as a budget shed
            Admission::Rejected {
                reason: RejectReason::Capacity,
                ..
            } => {
                self.bus.record_shed_frame(id);
                None
            }
        }
    }

    /// Two-stage admission (session budget, then global gate) that
    /// hands a refused frame *back* to the caller instead of deciding
    /// its fate:
    ///
    /// * [`RejectReason::Budget`] — the session's own bucket refused;
    ///   the shed is definitive and already recorded
    ///   ([`crate::SessionStats::shed_budget`]).
    /// * [`RejectReason::Capacity`] — the engine is saturated but the
    ///   session was within budget (its token was refunded). *Nothing*
    ///   was recorded: the caller chooses to retry later (calling
    ///   [`ServeEngine::note_deferred`] once per deferred frame) or to
    ///   drop via [`ServeEngine::try_push_frame`] semantics.
    ///
    /// This is the primitive `gp-net` builds socket backpressure on: a
    /// capacity-rejected frame pauses that connection's reads (TCP
    /// pushes back on the remote), while a budget-rejected frame is
    /// simply gone — the tenant outran its own contract.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live session.
    pub fn offer_frame(&self, id: SessionId, frame: Frame) -> Admission {
        let session = self
            .session(id)
            .unwrap_or_else(|| panic!("offer_frame on unknown {id}"));
        let headroom = self.config.max_batch.max(1);
        let span = self.mint_span();
        let ingest = self.telemetry.as_ref().map(|t| (t, Instant::now()));
        let completed = {
            let mut session = session.lock().expect("session poisoned");
            // Stage 1: the session's own budget. Consulted before the
            // global gate so a hot tenant sheds against itself even
            // when the engine also happens to be saturated.
            if let Some(bucket) = session.budget_mut() {
                let now = self.epoch.elapsed().as_secs_f64();
                if !bucket.try_take(1.0, now) {
                    drop(session);
                    self.bus.record_shed_budget(id);
                    return Admission::Rejected {
                        frame,
                        reason: RejectReason::Budget,
                    };
                }
            }
            // Stage 2: engine-global capacity.
            if !self.gate.try_acquire(headroom) {
                // Not the tenant's fault — give the token back.
                if let Some(bucket) = session.budget_mut() {
                    bucket.refund(1.0);
                }
                return Admission::Rejected {
                    frame,
                    reason: RejectReason::Capacity,
                };
            }
            self.gate.release(headroom);
            // Admission decided: both stages passed. `admission_wait`
            // covers lock contention + budget + gate probe.
            let seg_start = ingest.as_ref().map(|(t, start)| {
                t.stages.admission_wait.record_duration(start.elapsed());
                Instant::now()
            });
            let completed = session.push(frame, &self.preprocessor);
            if let (Some((t, _)), Some(seg_start)) = (&ingest, seg_start) {
                t.stages.segmentation.record_duration(seg_start.elapsed());
            }
            completed.map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)))
        };
        Admission::Admitted(self.record_completed(id, completed, span))
    }

    /// Records that a front-end deferred a capacity-rejected frame for
    /// later re-admission (see [`ServeEngine::offer_frame`]). Call once
    /// per frame, on its first deferral, so
    /// [`crate::SessionStats::deferred`] counts frames rather than
    /// retries.
    pub fn note_deferred(&self, id: SessionId) {
        self.bus.record_deferred(id);
    }

    /// Closes a session: flushes a gesture still open at stream end and
    /// removes the session from the registry. Returns the number of
    /// segments the close completed (0 or 1). Statistics and queued
    /// results survive the close.
    pub fn close_session(&self, id: SessionId) -> usize {
        let session = self
            .sessions
            .write()
            .expect("session registry poisoned")
            .remove(&id);
        let Some(session) = session else { return 0 };
        // Segments already enqueued carry their mode snapshot; the
        // session's mode entry itself dies with the session.
        self.modes
            .write()
            .expect("mode registry poisoned")
            .remove(&id);
        // A segment flushed by stream end is "ingested" by the close
        // itself — it still gets a span for its trip through the queue.
        let span = self.mint_span();
        let (finished, frames_seen) = {
            let mut session = session.lock().expect("session poisoned");
            let finished = session
                .finish(&self.preprocessor)
                .map(|c| (c, self.next_seq.fetch_add(1, Ordering::Relaxed)));
            (finished, session.frames_seen())
        };
        // The registry entry is gone; enqueue the final segment (if
        // any) and persist the stream's final frame count *before*
        // marking the session closed: `mark_closed` makes the session
        // eligible for stats eviction, and eviction's correctness rests
        // on everything the session will ever account for being
        // enqueued by then (see [`crate::bus::EventBus::sweep_closed`]).
        let completed = self.record_completed(id, finished, span);
        self.bus.set_frames(id, frames_seen as u64);
        self.bus.mark_closed(id);
        completed
    }

    /// Accounts for a possibly-closed segment: records it, and enqueues
    /// a job for whichever backend should infer it — the point path
    /// when noise canceling kept a sample, the RD path for RD sessions
    /// and for sparse hybrid segments the fallback re-routes.
    fn record_completed(
        &self,
        id: SessionId,
        completed: Option<(ClosedSegment, u64)>,
        span: SpanId,
    ) -> usize {
        let Some((closed, seq)) = completed else {
            return 0;
        };
        self.bus.record_segment(id);
        match closed {
            ClosedSegment::Point(segment, sample, rd_window) => {
                if let Some(rd_sample) = self.take_rd_fallback(&sample, rd_window) {
                    if let Some(t) = &self.telemetry {
                        t.rd.fallback.inc();
                        t.rd.segments.inc();
                    }
                    let payload = JobPayload::Rd {
                        segment: RdSegment {
                            start: segment.start,
                            end: segment.end,
                        },
                        sample: rd_sample,
                    };
                    self.enqueue(id, payload, seq, span);
                } else if let Some(sample) = sample {
                    let payload = JobPayload::Point {
                        segment,
                        sample: LabeledSample::from_sample(sample, 0, 0),
                    };
                    self.enqueue(id, payload, seq, span);
                }
            }
            ClosedSegment::Rd(segment, sample) => {
                if let Some(t) = &self.telemetry {
                    t.rd.segments.inc();
                }
                let payload = JobPayload::Rd { segment, sample };
                self.enqueue(id, payload, seq, span);
            }
        }
        1
    }

    /// The hybrid fallback decision: hand back the RD window when the
    /// fallback is configured, the session is paired, and the point
    /// sample is missing (noise-canceling reject) or too sparse.
    fn take_rd_fallback(
        &self,
        sample: &Option<GestureSample>,
        rd_window: Option<RdLabeledSample>,
    ) -> Option<RdLabeledSample> {
        let min_points = self.config.rd_fallback_min_points?;
        let rd = rd_window?;
        debug_assert!(self.rd_system.is_some(), "paired push without an RD system");
        let sparse = match sample {
            None => true,
            Some(sample) => sample.cloud.len() < min_points,
        };
        sparse.then_some(rd)
    }

    fn enqueue(&self, id: SessionId, payload: JobPayload, seq: u64, span: SpanId) {
        let now = Instant::now();
        let job = SegmentJob {
            session: id,
            seq,
            span,
            payload,
            detected: now,
            enqueued: now,
            mode: self.session_mode(id),
        };
        self.bus.record_enqueued(id);
        // Collect under the lock, dispatch after releasing it: dispatch
        // touches the bus and the pool, and other sessions' segment
        // closes must not serialize behind that.
        let batch = {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            pending.push_back(job);
            if pending.len() >= self.config.max_batch.max(1) {
                Some(pending.drain(..).collect::<Vec<SegmentJob>>())
            } else {
                None
            }
        };
        if let Some(batch) = batch {
            self.dispatch(batch);
        }
    }

    /// Dispatches any pending partial micro-batch.
    pub fn flush(&self) {
        let batch: Vec<SegmentJob> = {
            let mut pending = self.pending.lock().expect("pending queue poisoned");
            pending.drain(..).collect()
        };
        if !batch.is_empty() {
            self.dispatch(batch);
        }
    }

    fn dispatch(&self, batch: Vec<SegmentJob>) {
        // Backpressure: block here — on the producer that closed the
        // batch — while the executor already has a high watermark's
        // worth of segments outstanding.
        self.gate.acquire(batch.len());
        self.bus.add_in_flight(batch.len());
        let system = self.system.clone();
        let rd_system = self.rd_system.clone();
        let bus = self.bus.clone();
        let gate = self.gate.clone();
        let store = self.store.clone();
        let stages = self.telemetry.as_ref().map(|t| t.stages.clone());
        let rd_metrics = self.telemetry.as_ref().map(|t| t.rd.clone());
        self.pool.spawn(move || {
            // Guard: if inference panics, release the batch's gate
            // weight and in-flight slots so neither blocked producers
            // nor `drain` can hang on lost segments.
            struct Forfeit {
                bus: Arc<EventBus>,
                gate: Arc<gp_runtime::Gate>,
                remaining: usize,
            }
            impl Drop for Forfeit {
                fn drop(&mut self) {
                    self.gate.release(self.remaining);
                    for _ in 0..self.remaining {
                        self.bus.forfeit_in_flight();
                    }
                }
            }
            let mut guard = Forfeit {
                bus: bus.clone(),
                gate,
                remaining: batch.len(),
            };
            // A worker claimed the batch: the queue-wait stage ends
            // here for every job in it.
            if let Some(stages) = &stages {
                let claimed = Instant::now();
                for job in &batch {
                    stages
                        .queue_wait
                        .record_duration(claimed.saturating_duration_since(job.enqueued));
                }
            }
            // Partition by backend: one batched call per system, then
            // results are stitched back into batch order — so a mixed
            // batch still publishes per-job in `(session, seq)` order.
            let mut point_refs: Vec<&LabeledSample> = Vec::new();
            let mut point_at: Vec<usize> = Vec::new();
            let mut rd_refs: Vec<&RdLabeledSample> = Vec::new();
            let mut rd_at: Vec<usize> = Vec::new();
            for (i, job) in batch.iter().enumerate() {
                match &job.payload {
                    JobPayload::Point { sample, .. } => {
                        point_at.push(i);
                        point_refs.push(sample);
                    }
                    JobPayload::Rd { sample, .. } => {
                        rd_at.push(i);
                        rd_refs.push(sample);
                    }
                }
            }
            let infer_start = stages.as_ref().map(|_| Instant::now());
            let mut inferences: Vec<Option<Inference>> = (0..batch.len()).map(|_| None).collect();
            if !point_refs.is_empty() {
                for (&i, inference) in point_at.iter().zip(system.infer_batch(&point_refs)) {
                    inferences[i] = Some(inference);
                }
            }
            if !rd_refs.is_empty() {
                let rd_system = rd_system
                    .as_ref()
                    .expect("RD job enqueued without an RD system");
                for (&i, inference) in rd_at.iter().zip(rd_system.infer_rd_batch(&rd_refs)) {
                    inferences[i] = Some(inference);
                }
            }
            // Every result in the batch experienced the whole batch's
            // inference time — that is its latency, not an N-th share.
            let infer_done = infer_start.map(|start| (start.elapsed(), Instant::now()));
            let inferences = inferences
                .into_iter()
                .map(|i| i.expect("every job in the batch was inferred"));
            for (job, inference) in batch.iter().zip(inferences) {
                guard.remaining -= 1;
                // Identity resolution happens on the worker, after
                // inference: the embedding is tapped from the fusion
                // feature of the identifier the predicted gesture
                // routes to, then enrolled or matched open-set.
                let identity = resolve_identity(
                    &system,
                    rd_system.as_deref(),
                    store.as_deref(),
                    job,
                    &inference,
                );
                if matches!(identity, Some(IdentityOutcome::Enrolled { .. })) {
                    bus.record_enrolled(job.session);
                }
                // Stage clocks are recorded *before* the publish: the
                // publish is what releases `wait_idle`, so anything
                // recorded after it races a stats() reader.
                if let (Some(stages), Some((infer_elapsed, done_at))) = (&stages, &infer_done) {
                    stages.inference.record_duration(*infer_elapsed);
                    // Publish delay includes waiting behind this
                    // batch's earlier results — the real delay this
                    // result saw between inference end and its event.
                    stages.publish.record_duration(done_at.elapsed());
                }
                let (segment, backend) = match &job.payload {
                    JobPayload::Point { segment, .. } => (*segment, SensingBackend::PointCloud),
                    JobPayload::Rd { segment, .. } => (
                        // RD segments share the point type's frame-index
                        // semantics, so events stay representation-
                        // agnostic downstream.
                        GestureSegment {
                            start: segment.start,
                            end: segment.end,
                        },
                        SensingBackend::RangeDoppler,
                    ),
                };
                if backend == SensingBackend::RangeDoppler {
                    if let Some(rd) = &rd_metrics {
                        rd.results.inc();
                    }
                }
                // Gate weight releases *before* the publish: once
                // `wait_idle` observes every result, the gate is
                // provably back to zero (`drain` relies on this).
                guard.gate.release(1);
                bus.publish(ServeEvent {
                    session: job.session,
                    seq: job.seq,
                    span: job.span,
                    segment,
                    backend,
                    inference,
                    identity,
                    latency: job.detected.elapsed(),
                });
            }
        });
    }

    /// Takes every event published so far *without* flushing pending
    /// partial batches or waiting for in-flight work — the non-blocking
    /// pump for streaming consumers (the `gp-net` reactor) that must
    /// never barrier behind inference. Each poll's events are sorted by
    /// `(session, seq)`, but unlike [`ServeEngine::drain`] there is no
    /// barrier, so with multiple workers a later poll can surface an
    /// earlier `seq` from a still-in-flight batch — order-sensitive
    /// consumers should reorder on `seq` per session.
    ///
    /// Pair with a periodic [`ServeEngine::flush`] so lone segments in
    /// a partial batch don't wait forever, and use
    /// [`ServeEngine::drain`] when a full barrier (and closed-session
    /// stats eviction) is actually wanted.
    pub fn poll_events(&self) -> Vec<ServeEvent> {
        let mut events = self.bus.take_events();
        events.sort_by_key(|e| (e.session, e.seq));
        events
    }

    /// Whether a session's accounting is final: it has been closed and
    /// every segment it enqueued for inference has published its
    /// result. (A live session is never settled — more frames may
    /// arrive.) Streaming fronts use this to know when a closed
    /// stream's last results are out before saying goodbye; the queued
    /// final segment still needs a [`ServeEngine::flush`] (or full
    /// [`ServeEngine::drain`]) to dispatch first.
    pub fn session_settled(&self, id: SessionId) -> bool {
        self.session(id).is_none() && self.bus.is_settled(id)
    }

    /// Flushes pending segments, waits for all in-flight batches, and
    /// returns every event published since the last drain, sorted by
    /// `(session, seq)` for deterministic consumption.
    pub fn drain(&self) -> Vec<ServeEvent> {
        // Eviction eligibility is snapshotted *before* the flush: a
        // session closed before this point has already enqueued its
        // final segment (see `close_session`), so the flush dispatches
        // it and `wait_idle` sees its result published — its accounting
        // is final. Sessions closed concurrently after the snapshot
        // simply wait for the next drain.
        let eligible = self.bus.close_epoch();
        self.flush();
        self.bus.wait_idle();
        self.bus
            .sweep_closed(self.config.retain_closed_sessions, eligible);
        let mut events = self.bus.take_events();
        events.sort_by_key(|e| (e.session, e.seq));
        events
    }

    /// Snapshot of one session's statistics — O(1) in the number of
    /// sessions, unlike [`ServeEngine::stats`], so per-connection
    /// goodbye paths can read their ledger without cloning the world.
    /// `None` once the session's entry has been evicted (or never
    /// existed).
    pub fn session_stats(&self, id: SessionId) -> Option<crate::SessionStats> {
        let mut stats = self.bus.session_stats(id)?;
        if let Some(session) = self.session(id) {
            stats.frames = session.lock().expect("session poisoned").frames_seen() as u64;
        }
        Some(stats)
    }

    /// Snapshot of per-session and aggregate statistics.
    ///
    /// Frame counts live in each session's own state (off the per-frame
    /// hot path); live sessions are folded in here, closed sessions were
    /// persisted at close time.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.bus.stats();
        let sessions = self.sessions.read().expect("session registry poisoned");
        for (&id, session) in sessions.iter() {
            let frames = session.lock().expect("session poisoned").frames_seen() as u64;
            stats.sessions.entry(id).or_default().frames = frames;
        }
        drop(sessions);
        if let Some(t) = &self.telemetry {
            stats.stages = StageBreakdown {
                admission_wait: t.stages.admission_wait.snapshot(),
                segmentation: t.stages.segmentation.snapshot(),
                queue_wait: t.stages.queue_wait.snapshot(),
                inference: t.stages.inference.snapshot(),
                publish: t.stages.publish.snapshot(),
            };
        }
        stats
    }

    /// The shared telemetry registry, the namespace every subsystem
    /// publishes into: the engine's stage histograms and pool
    /// utilization live here, and fronts (gp-net) register their own
    /// counters alongside. `None` when [`ServeConfig::telemetry`] is
    /// off.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// A point-in-time [`TelemetrySnapshot`] of the whole registry,
    /// with the engine's instantaneous gauges (gate depth, live
    /// sessions) refreshed first. `None` when telemetry is off.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        let t = self.telemetry.as_ref()?;
        t.registry
            .gauge("serve.gate.depth")
            .set(self.gate.outstanding() as i64);
        t.registry
            .gauge("serve.gate.high_watermark")
            .set(self.config.pending_high_watermark as i64);
        t.registry
            .gauge("serve.sessions.live")
            .set(self.session_count() as i64);
        Some(t.registry.snapshot())
    }
}

/// Resolves one job's identity against the store, per its mode
/// snapshot. Returns `None` for classify jobs, engines without a
/// store, or systems whose identifier exposes no fusion embedding
/// (non-GesIDNet models); enrollment failures (e.g. an embedding
/// dimension that no longer matches the gallery) also resolve to
/// `None` rather than poisoning the batch. The embedding comes from
/// whichever backend inferred the job, so an RD gallery and a
/// point-cloud gallery never mix (their dimensions differ and the
/// store's dimension check rejects a crossover).
fn resolve_identity(
    system: &GesturePrint,
    rd_system: Option<&GesturePrint>,
    store: Option<&IdentityStore>,
    job: &SegmentJob,
    inference: &Inference,
) -> Option<IdentityOutcome> {
    let store = store?;
    if job.mode == SessionMode::Classify {
        return None;
    }
    let embedding = match &job.payload {
        JobPayload::Point { sample, .. } => {
            system.embedding_for_gesture(sample, inference.gesture)?
        }
        JobPayload::Rd { sample, .. } => {
            rd_system?.embedding_rd_for_gesture(sample, inference.gesture)?
        }
    };
    match &job.mode {
        SessionMode::Classify => None,
        SessionMode::Enroll(user) => {
            store
                .enroll(user, &embedding)
                .ok()
                .map(|receipt| IdentityOutcome::Enrolled {
                    user: receipt.user,
                    samples: receipt.samples,
                })
        }
        SessionMode::Identify => Some(match store.identify(&embedding) {
            Identification::Accepted(m) => IdentityOutcome::Identified {
                user: m.user,
                distance: m.distance,
            },
            Identification::Rejected(nearest) => IdentityOutcome::Unknown {
                distance: nearest.map(|m| m.distance),
            },
        }),
    }
}
