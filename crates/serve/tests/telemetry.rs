//! Stage tracing and snapshot export through the engine:
//! [`gp_serve::ServeStats::stages`] decomposes end-to-end latency into
//! the five span stages, the telemetry registry exports a versioned
//! snapshot, and turning telemetry off removes all of it without
//! changing what the engine computes.

use gp_serve::{ServeConfig, ServeEngine, TelemetrySnapshot};
use gp_testkit::{stream_fixture, toy_system};

fn run(telemetry: bool) -> ServeEngine {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            telemetry,
            ..ServeConfig::default()
        },
    );
    let stream = stream_fixture();
    let session = engine.open_session();
    for frame in &stream.frames {
        engine.push_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine.drain();
    engine
}

#[test]
fn stats_report_per_stage_latency_breakdown() {
    let engine = run(true);
    let stats = engine.stats();
    let results = stats.total_results();
    assert!(results >= 2, "fixture publishes several results");

    // Every admitted frame was timed through admission + segmentation…
    let frames = stats.total_frames();
    assert_eq!(stats.stages.admission_wait.count(), frames);
    assert_eq!(stats.stages.segmentation.count(), frames);
    // …and every published result through the executor stages.
    assert_eq!(stats.stages.queue_wait.count(), results);
    assert_eq!(stats.stages.inference.count(), results);
    assert_eq!(stats.stages.publish.count(), results);

    // Each stage exposes p50/p99 (the acceptance-criteria numbers).
    for (name, hist) in stats.stages.named() {
        assert!(hist.percentile(50.0).is_some(), "{name} has a p50");
        assert!(hist.percentile(99.0).is_some(), "{name} has a p99");
        assert!(
            hist.percentile(50.0) <= hist.percentile(99.0),
            "{name} percentiles are ordered"
        );
    }
    // Inference dominates queue residency for an unsaturated replay,
    // and a result's end-to-end latency is at least its inference time.
    let e2e_p99 = stats.latency_percentile(99.0).unwrap().as_micros() as u64;
    let inference_p50 = stats.stages.inference.percentile(50.0).unwrap();
    assert!(e2e_p99 >= inference_p50, "stages decompose the e2e number");
}

#[test]
fn snapshot_exports_whole_registry_and_roundtrips() {
    let engine = run(true);
    let snap = engine.telemetry_snapshot().expect("telemetry is on");

    // Stage histograms, pool utilization, and gauges share one registry.
    assert!(snap.histograms.contains_key("serve.stage.inference"));
    assert!(snap.histograms.contains_key("serve.stage.queue_wait"));
    assert!(snap.counters.contains_key("serve.pool.jobs"));
    assert!(snap.counters.contains_key("serve.pool.busy_us"));
    assert_eq!(snap.gauges.get("serve.pool.workers"), Some(&2));
    assert_eq!(snap.gauges.get("serve.gate.depth"), Some(&0), "drained");
    assert_eq!(snap.gauges.get("serve.sessions.live"), Some(&0), "closed");

    // Versioned and deterministic over the wire format.
    assert_eq!(snap.schema_version, gp_telemetry::TELEMETRY_SCHEMA_VERSION);
    let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn telemetry_off_disables_stage_clocks_not_serving() {
    let engine = run(false);
    assert!(engine.telemetry_snapshot().is_none());
    assert!(engine.registry().is_none());
    let stats = engine.stats();
    // Serving accounting is unchanged; only the stage clocks are gone.
    assert!(stats.total_results() >= 2);
    assert!(stats.latency_percentile(99.0).is_some());
    for (name, hist) in stats.stages.named() {
        assert!(hist.is_empty(), "{name} must not be recorded when off");
    }
}
