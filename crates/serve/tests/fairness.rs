//! Fairness regression: one hot (over-budget) tenant must not change
//! what quiet tenants experience — no sheds charged to them, identical
//! results, and their admission path never consumed by the hot
//! session's excess.

use gp_pointcloud::{Point, PointCloud, Vec3};
use gp_radar::Frame;
use gp_serve::{AdmissionConfig, ServeConfig, ServeEngine, ServeStats, SessionId};
use gp_testkit::{stream_fixture, toy_system};
use std::collections::BTreeMap;

const QUIET_SESSIONS: usize = 4;
/// Hot frames offered per quiet frame — far beyond the hot budget.
const HOT_FANOUT: usize = 20;

fn hot_frame(i: usize) -> Frame {
    let cloud: PointCloud = (0..8)
        .map(|k| Point::new(Vec3::new(k as f64 * 0.04, 1.1, 1.0), 0.3, 14.0))
        .collect();
    Frame::new(i as f64 * 0.005, cloud)
}

/// Per-quiet-session result signature: segment bounds + predictions.
type ResultSig = BTreeMap<u64, Vec<(usize, usize, usize, usize)>>;

/// Replays the quiet cohort (optionally alongside a hot tenant) and
/// returns each quiet session's results plus the final stats and the
/// hot session id.
fn run(with_hot: bool) -> (ResultSig, ServeStats, Option<SessionId>) {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    );
    let stream = stream_fixture();
    let quiet: Vec<SessionId> = (0..QUIET_SESSIONS).map(|_| engine.open_session()).collect();
    // The hot tenant gets a real (small) budget and then wildly
    // overruns it: a sustained 20 fps against a 20x offered rate.
    let hot = with_hot.then(|| engine.open_session_with(Some(AdmissionConfig::new(20.0, 10.0))));

    let mut hot_i = 0usize;
    for frame in &stream.frames {
        for &q in &quiet {
            let admitted = engine.try_push_frame(q, frame.clone());
            assert!(admitted.is_some(), "a quiet session must never shed");
        }
        if let Some(hot) = hot {
            for _ in 0..HOT_FANOUT {
                // Budget-shed excess is the expected steady state.
                let _ = engine.try_push_frame(hot, hot_frame(hot_i));
                hot_i += 1;
            }
        }
    }
    for &q in &quiet {
        engine.close_session(q);
    }
    if let Some(hot) = hot {
        engine.close_session(hot);
    }

    let mut results: ResultSig = quiet.iter().map(|q| (q.0, Vec::new())).collect();
    for event in engine.drain() {
        if let Some(rows) = results.get_mut(&event.session.0) {
            rows.push((
                event.segment.start,
                event.segment.end,
                event.inference.gesture,
                event.inference.user,
            ));
        }
    }
    (results, engine.stats(), hot)
}

#[test]
fn hot_tenant_does_not_disturb_quiet_sessions() {
    let (baseline, baseline_stats, _) = run(false);
    let (overloaded, stats, hot) = run(true);
    let hot = hot.expect("overloaded run has a hot session");

    // The quiet sessions' outputs are bit-identical with and without
    // the hot tenant: same segments, same predictions, same counts.
    assert_eq!(
        overloaded, baseline,
        "a hot tenant must not change quiet sessions' results"
    );
    assert!(
        baseline.values().any(|rows| !rows.is_empty()),
        "the fixture stream must produce results for the comparison to mean anything"
    );

    // No shed of either kind is ever charged to a quiet session.
    for (id, session) in &stats.sessions {
        if *id == hot {
            continue;
        }
        assert_eq!(session.shed_budget, 0, "{id}: budget shed on quiet");
        assert_eq!(session.shed_frames, 0, "{id}: capacity shed on quiet");
    }

    // The hot tenant paid for its own excess...
    let hot_stats = &stats.sessions[&hot];
    assert!(
        hot_stats.shed_budget > 0,
        "the hot tenant must overrun its budget (admitted {})",
        hot_stats.frames
    );
    // ...and its admitted+shed ledger reconciles exactly.
    let hot_offered = stream_fixture().frames.len() as u64 * HOT_FANOUT as u64;
    assert_eq!(
        hot_stats.frames + hot_stats.shed_budget + hot_stats.shed_frames,
        hot_offered,
        "every hot frame is admitted, budget-shed, or capacity-shed"
    );

    // Quiet latency accounting survived the overload run (the strict
    // p99-vs-idle spread bound lives in `benches/net_serve.rs`, where
    // wall-clock conditions are controlled).
    let quiet_p99 = |stats: &ServeStats| {
        stats
            .sessions
            .iter()
            .filter(|(id, _)| **id != hot)
            .filter_map(|(_, s)| s.latency_percentile(99.0))
            .max()
    };
    assert!(quiet_p99(&stats).is_some(), "quiet sessions have latencies");
    assert!(quiet_p99(&baseline_stats).is_some());
}
