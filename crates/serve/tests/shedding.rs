//! Load shedding: an over-rate producer using
//! [`ServeEngine::try_push_frame`] sheds frames instead of blocking
//! when the executor is saturated, and the shed frames are accounted
//! per session.

use gp_serve::{ServeConfig, ServeEngine};
use gp_testkit::{stream_fixture, toy_system};

fn tight_config() -> ServeConfig {
    ServeConfig {
        // One-segment batches against a one-segment watermark: the gate
        // is saturated the moment any inference is in flight.
        max_batch: 1,
        pending_high_watermark: 1,
        workers: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn over_rate_producer_sheds_instead_of_blocking() {
    let engine = ServeEngine::new(toy_system(), tight_config());
    let stream = stream_fixture();
    let session = engine.open_session();

    let mut accepted = 0u64;
    let mut shed = 0u64;
    // Replay at full speed — far beyond the executor's drain rate. The
    // blocking `push_frame` would stall this loop at the watermark;
    // `try_push_frame` must instead return `None` and move on.
    for frame in &stream.frames {
        match engine.try_push_frame(session, frame.clone()) {
            Some(_) => accepted += 1,
            None => shed += 1,
        }
    }
    engine.close_session(session);
    let results = engine.drain().len();

    assert!(
        shed > 0,
        "a full-speed replay against a 1-segment watermark must shed \
         (accepted {accepted}, results {results})"
    );
    assert!(accepted > 0, "shedding must not reject an idle engine");

    // Accounting: every offered frame is either in the session or shed.
    let stats = engine.stats();
    assert_eq!(stats.total_shed_frames(), shed);
    assert_eq!(stats.total_frames(), accepted);
    assert_eq!(
        stats.total_frames() + stats.total_shed_frames(),
        stream.frames.len() as u64
    );
    let per_session = &stats.sessions[&session];
    assert_eq!(per_session.shed_frames, shed, "shed count is per-session");

    // After the drain the gate is idle again: nothing sheds.
    let fresh = engine.open_session();
    assert!(
        engine
            .try_push_frame(fresh, stream.frames[0].clone())
            .is_some(),
        "an idle engine admits frames"
    );
    engine.close_session(fresh);
    engine.drain();
}

#[test]
fn shed_frames_survive_stats_eviction() {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            retain_closed_sessions: 0,
            ..tight_config()
        },
    );
    let stream = stream_fixture();
    let session = engine.open_session();
    let mut shed = 0u64;
    for frame in &stream.frames {
        if engine.try_push_frame(session, frame.clone()).is_none() {
            shed += 1;
        }
    }
    engine.close_session(session);
    engine.drain();
    // Another drain sweeps the closed session into the evicted
    // aggregate; the shed total must survive the fold.
    engine.drain();
    let stats = engine.stats();
    assert!(!stats.sessions.contains_key(&session), "entry evicted");
    assert_eq!(stats.total_shed_frames(), shed);
}

#[test]
fn quiet_sessions_never_shed() {
    // Default watermark (256) with a light single stream: shedding is
    // purely an overload behaviour.
    let engine = ServeEngine::new(toy_system(), ServeConfig::default());
    let stream = stream_fixture();
    let session = engine.open_session();
    for frame in &stream.frames {
        assert!(engine.try_push_frame(session, frame.clone()).is_some());
    }
    engine.close_session(session);
    engine.drain();
    assert_eq!(engine.stats().total_shed_frames(), 0);
}
