//! Load shedding: an over-rate producer using
//! [`ServeEngine::try_push_frame`] sheds frames instead of blocking
//! when the executor is saturated, and the shed frames are accounted
//! per session.

use gp_pointcloud::{Point, PointCloud, Vec3};
use gp_radar::Frame;
use gp_serve::{Admission, AdmissionConfig, RejectReason, ServeConfig, ServeEngine};
use gp_testkit::{stream_fixture, toy_system};

/// A motionless single-point frame: feeds a session without ever
/// closing a segment, so pushing it cannot engage the dispatch gate.
fn idle_frame(i: usize) -> Frame {
    let cloud: PointCloud =
        std::iter::once(Point::new(Vec3::new(0.0, 1.2, 1.0), 0.0, 15.0)).collect();
    Frame::new(i as f64 * 0.1, cloud)
}

/// A stream of many short dense motion bursts, each closing its own
/// segment. A full-speed replay closes segments far faster than one
/// worker can run inference on them, so against `tight_config` the
/// gate *must* saturate by throughput — the tests below do not depend
/// on how the OS happens to interleave the producer and the worker
/// (the capture fixture's two or three widely-spaced segments do,
/// which made them flake on loaded single-core machines).
fn saturating_stream() -> Vec<Frame> {
    let mut frames = Vec::new();
    let mut t = 0usize;
    for _ in 0..40 {
        for b in 0..8 {
            let cloud: PointCloud = (0..16)
                .map(|k| {
                    Point::new(
                        Vec3::new(k as f64 * 0.06, 1.0 + b as f64 * 0.02, 1.2),
                        0.5,
                        18.0,
                    )
                })
                .collect();
            frames.push(Frame::new(t as f64 * 0.1, cloud));
            t += 1;
        }
        for _ in 0..12 {
            frames.push(idle_frame(t));
            t += 1;
        }
    }
    frames
}

fn tight_config() -> ServeConfig {
    ServeConfig {
        // One-segment batches against a one-segment watermark: the gate
        // is saturated the moment any inference is in flight.
        max_batch: 1,
        pending_high_watermark: 1,
        workers: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn over_rate_producer_sheds_instead_of_blocking() {
    let engine = ServeEngine::new(toy_system(), tight_config());
    let frames = saturating_stream();
    let session = engine.open_session();

    let mut accepted = 0u64;
    let mut shed = 0u64;
    // Replay at full speed — far beyond the executor's drain rate. The
    // blocking `push_frame` would stall this loop at the watermark;
    // `try_push_frame` must instead return `None` and move on.
    for frame in &frames {
        match engine.try_push_frame(session, frame.clone()) {
            Some(_) => accepted += 1,
            None => shed += 1,
        }
    }
    engine.close_session(session);
    let results = engine.drain().len();

    assert!(
        shed > 0,
        "a full-speed replay against a 1-segment watermark must shed \
         (accepted {accepted}, results {results})"
    );
    assert!(accepted > 0, "shedding must not reject an idle engine");

    // Accounting: every offered frame is either in the session or shed.
    let stats = engine.stats();
    assert_eq!(stats.total_shed_frames(), shed);
    assert_eq!(stats.total_frames(), accepted);
    assert_eq!(
        stats.total_frames() + stats.total_shed_frames(),
        frames.len() as u64
    );
    let per_session = &stats.sessions[&session];
    assert_eq!(per_session.shed_frames, shed, "shed count is per-session");

    // After the drain the gate is idle again: nothing sheds.
    let fresh = engine.open_session();
    assert!(
        engine.try_push_frame(fresh, frames[0].clone()).is_some(),
        "an idle engine admits frames"
    );
    engine.close_session(fresh);
    engine.drain();
}

#[test]
fn shed_frames_survive_stats_eviction() {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            retain_closed_sessions: 0,
            ..tight_config()
        },
    );
    let session = engine.open_session();
    let mut shed = 0u64;
    for frame in saturating_stream() {
        if engine.try_push_frame(session, frame).is_none() {
            shed += 1;
        }
    }
    engine.close_session(session);
    engine.drain();
    // Another drain sweeps the closed session into the evicted
    // aggregate; the shed total must survive the fold.
    engine.drain();
    let stats = engine.stats();
    assert!(!stats.sessions.contains_key(&session), "entry evicted");
    assert_eq!(stats.total_shed_frames(), shed);
}

#[test]
fn budget_is_consulted_before_the_global_gate() {
    // Pin the admission order: a session that is over *its own* budget
    // must be recorded as a budget shed even while the engine-global
    // gate is also saturated — the tenant's excess is never excused by
    // (or charged to) engine capacity.
    let engine = ServeEngine::new(toy_system(), tight_config());

    // Saturate the gate with an unbudgeted session replayed at full
    // speed (the 1-segment watermark of `tight_config`).
    let hog = engine.open_session();
    let mut hog_shed_capacity = 0u64;
    for frame in saturating_stream() {
        if engine.try_push_frame(hog, frame).is_none() {
            hog_shed_capacity += 1;
        }
    }
    assert!(hog_shed_capacity > 0, "the gate must be saturated");

    // A zero-budget session offered frames while the gate is (still)
    // saturated: every rejection must be a *budget* rejection.
    let broke = engine.open_session_with(Some(AdmissionConfig::new(0.0, 0.0)));
    let offered = 25u64;
    for i in 0..offered as usize {
        match engine.offer_frame(broke, idle_frame(i)) {
            Admission::Rejected {
                reason: RejectReason::Budget,
                ..
            } => {}
            other => panic!("expected a budget rejection, got {other:?}"),
        }
    }
    engine.close_session(broke);
    engine.close_session(hog);
    engine.drain();

    let stats = engine.stats();
    let broke_stats = &stats.sessions[&broke];
    assert_eq!(broke_stats.shed_budget, offered, "every offer budget-shed");
    assert_eq!(
        broke_stats.shed_frames, 0,
        "a budget-shed frame must never also count as a capacity shed"
    );
    assert_eq!(broke_stats.frames, 0, "no frame entered the session");
    let hog_stats = &stats.sessions[&hog];
    assert_eq!(
        hog_stats.shed_budget, 0,
        "an unbudgeted session never sheds by budget"
    );
    assert_eq!(hog_stats.shed_frames, hog_shed_capacity);
}

#[test]
fn capacity_rejection_refunds_the_budget_token() {
    // A within-budget frame rejected for engine capacity must not
    // consume the session's budget: once capacity frees up, the same
    // budget admits the same number of frames as if the engine had
    // never been saturated.
    let engine = ServeEngine::new(toy_system(), tight_config());
    let frames = saturating_stream();

    // Burst budget of 10, no refill: without refunds, capacity
    // rejections would silently drain the 10 tokens. The tenant only
    // offers while the gate is *observably* saturated
    // (`outstanding() > 0` against a 1-segment watermark) — offering
    // unconditionally would spend the whole burst in the first ten
    // loop iterations, before the hog's first segment even closes.
    let hog = engine.open_session();
    let tenant = engine.open_session_with(Some(AdmissionConfig::new(0.0, 10.0)));
    let mut capacity_rejections = 0u64;
    let mut offered = 0usize;
    for frame in frames {
        let _ = engine.try_push_frame(hog, frame);
        if engine.outstanding() > 0 {
            match engine.offer_frame(tenant, idle_frame(offered)) {
                Admission::Rejected {
                    reason: RejectReason::Capacity,
                    ..
                } => capacity_rejections += 1,
                // The gate can drain between the probe and the offer:
                // such an admission consumes a token for real, which
                // the final count still accounts for.
                Admission::Rejected {
                    reason: RejectReason::Budget,
                    ..
                }
                | Admission::Admitted(_) => {}
            }
            offered += 1;
        }
    }
    // Drain the gate, then spend the remaining budget.
    engine.close_session(hog);
    engine.drain();
    let stats = engine.stats();
    let spent = stats.sessions[&tenant].frames;
    for i in offered..offered + 200 {
        if let Admission::Rejected { reason, .. } = engine.offer_frame(tenant, idle_frame(i)) {
            assert_eq!(reason, RejectReason::Budget, "gate is idle after drain");
            break;
        }
    }
    engine.close_session(tenant);
    engine.drain();

    let stats = engine.stats();
    let tenant_stats = &stats.sessions[&tenant];
    assert!(
        capacity_rejections > 0,
        "the saturated gate must have rejected some within-budget offers"
    );
    assert_eq!(
        tenant_stats.frames, 10,
        "refunded tokens let the full burst through eventually \
         (spent {spent} while saturated, {capacity_rejections} capacity rejections)"
    );
}

#[test]
fn quiet_sessions_never_shed() {
    // Default watermark (256) with a light single stream: shedding is
    // purely an overload behaviour.
    let engine = ServeEngine::new(toy_system(), ServeConfig::default());
    let stream = stream_fixture();
    let session = engine.open_session();
    for frame in &stream.frames {
        assert!(engine.try_push_frame(session, frame.clone()).is_some());
    }
    engine.close_session(session);
    engine.drain();
    assert_eq!(engine.stats().total_shed_frames(), 0);
}
