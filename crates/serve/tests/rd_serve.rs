//! End-to-end range-Doppler serving: the acceptance path for the
//! backend-agnostic engine.
//!
//! * `rd_sessions_classify_held_out_captures_above_chance` trains the
//!   conv/LSTM RD model on *synthesized* range-Doppler frames (the
//!   same kinematic ground truth as the point-cloud simulator), streams
//!   held-out captures through `ServeEngine` sessions opened in RD
//!   mode, and checks both tasks beat chance.
//! * The hybrid tests drive one session with paired point+RD frames
//!   and show the sparse-cloud fallback re-routing a segment to the RD
//!   backend.

use gestureprint_core::{
    GesturePrint, GesturePrintConfig, IdentificationMode, ModelKind, TrainConfig,
};
use gp_pointcloud::{Point, PointCloud, Vec3};
use gp_radar::Frame;
use gp_rd::{RdConfig, RdFrame, RdLabeledSample};
use gp_serve::{SensingBackend, ServeConfig, ServeEngine, ServeEvent};
use gp_testkit::{rd_capture, rd_sample, toy_rd_system, toy_system};

/// The two ASL gestures of the serving cohort, remapped to classes
/// 0/1. 'Push' (12) is strongly radial; 'wave' (3) sweeps laterally —
/// distinct Doppler signatures.
const GESTURES: [usize; 2] = [12, 3];
const USERS: usize = 2;
const TRAIN_REPS: u64 = 4;

/// Trains an RD system on synthesized captures (dominant-segmented,
/// labels remapped to the cohort's class ids).
fn trained_rd_system() -> GesturePrint {
    let mut samples: Vec<RdLabeledSample> = Vec::new();
    for (class, &gesture) in GESTURES.iter().enumerate() {
        for user in 0..USERS {
            for rep in 0..TRAIN_REPS {
                let mut sample = rd_sample(user, gesture, rep);
                sample.gesture = class;
                samples.push(sample);
            }
        }
    }
    let refs: Vec<&RdLabeledSample> = samples.iter().collect();
    GesturePrint::train_rd(
        &refs,
        GESTURES.len(),
        USERS,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig {
                model: ModelKind::RdNet,
                epochs: 12,
                learning_rate: 5e-3,
                augment: None,
                ..TrainConfig::default()
            },
            threads: 2,
        },
    )
}

/// Streams one capture through its own RD session and returns the
/// session's events (the longest segment is the gesture).
fn serve_capture(engine: &ServeEngine, frames: &[RdFrame]) -> Vec<ServeEvent> {
    let session = engine.open_rd_session();
    assert_eq!(
        engine.session_backend(session),
        Some(SensingBackend::RangeDoppler)
    );
    for frame in frames {
        engine.push_rd_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine
        .drain()
        .into_iter()
        .filter(|e| e.session == session)
        .collect()
}

#[test]
fn rd_sessions_classify_held_out_captures_above_chance() {
    let engine =
        ServeEngine::new(toy_system(), ServeConfig::default()).with_rd_system(trained_rd_system());
    let mut total = 0usize;
    let mut gesture_correct = 0usize;
    let mut user_correct = 0usize;
    for (class, &gesture) in GESTURES.iter().enumerate() {
        for user in 0..USERS {
            for rep in [20u64, 21] {
                let (_, frames) = rd_capture(user, gesture, rep);
                let events = serve_capture(&engine, &frames);
                let event = events
                    .iter()
                    .max_by_key(|e| e.segment.len())
                    .expect("held-out capture must segment and publish");
                assert_eq!(event.backend, SensingBackend::RangeDoppler);
                total += 1;
                gesture_correct += usize::from(event.inference.gesture == class);
                user_correct += usize::from(event.inference.user == user);
            }
        }
    }
    assert_eq!(total, 8);
    // Chance is 1/2 on both tasks (2 gestures, 2 users).
    assert!(
        gesture_correct > total / 2,
        "gesture accuracy at or below chance: {gesture_correct}/{total}"
    );
    assert!(
        user_correct > total / 2,
        "user accuracy at or below chance: {user_correct}/{total}"
    );

    // The engine's RD telemetry saw every frame and every result.
    let registry = engine.registry().expect("telemetry on by default");
    assert!(registry.counter("serve.rd.frames").get() > 0);
    assert_eq!(registry.counter("serve.rd.fallback").get(), 0);
    assert_eq!(
        registry.counter("serve.rd.results").get(),
        registry.counter("serve.rd.segments").get()
    );
}

#[test]
fn rd_predictions_deterministic_across_worker_counts() {
    let (_, frames) = rd_capture(0, GESTURES[0], 33);
    let replay = |workers: usize, max_batch: usize| -> Vec<ServeEvent> {
        let engine = ServeEngine::new(
            toy_system(),
            ServeConfig {
                workers,
                max_batch,
                ..ServeConfig::default()
            },
        )
        .with_rd_system(toy_rd_system());
        serve_capture(&engine, &frames)
    };
    let single = replay(1, 1);
    assert!(!single.is_empty(), "capture should publish RD results");
    for (workers, max_batch) in [(4, 1), (1, 8), (4, 3)] {
        let multi = replay(workers, max_batch);
        assert_eq!(single.len(), multi.len());
        for (a, b) in single.iter().zip(&multi) {
            assert_eq!(a.segment, b.segment);
            assert_eq!(a.backend, b.backend);
            assert_eq!(
                a.inference, b.inference,
                "RD prediction differs with {workers} workers / batch {max_batch}"
            );
        }
    }
}

/// A point frame with `points` detections (the serve session tests'
/// burst pattern).
fn point_frame(i: usize, points: usize) -> Frame {
    let cloud: PointCloud = (0..points)
        .map(|k| Point::new(Vec3::new(k as f64 * 0.05, 1.2, 1.0), 0.4, 15.0))
        .collect();
    Frame::new(i as f64 * 0.1, cloud)
}

/// An RD frame shaped like the toy RD cohort's gesture-1/user-1 cell,
/// active only inside the paired point burst.
fn paired_rd_frame(cfg: &RdConfig, i: usize, active: bool) -> RdFrame {
    let mut f = RdFrame::zeros(cfg, i as f64 * 0.1);
    if active {
        f.power[12 * cfg.range_bins + 36 + i % 4] = 45.0;
        f.power[13 * cfg.range_bins + 36 + i % 4] = 25.0;
    }
    f
}

/// Drives one hybrid session with paired pushes and returns its single
/// event plus the engine (for counter assertions).
fn replay_paired(min_points: Option<usize>) -> (ServeEngine, Vec<ServeEvent>) {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 1,
            rd_fallback_min_points: min_points,
            ..ServeConfig::default()
        },
    )
    .with_rd_system(toy_rd_system());
    let cfg = RdConfig::default();
    let session = engine.open_session();
    for i in 0..70 {
        let burst = (20..45).contains(&i);
        let points = if burst { 14 } else { 1 };
        engine.push_paired_frame(
            session,
            point_frame(i, points),
            paired_rd_frame(&cfg, i, burst),
        );
    }
    engine.close_session(session);
    let events = engine.drain();
    (engine, events)
}

#[test]
fn sparse_hybrid_segment_falls_back_to_rd_backend() {
    // An impossible point threshold makes every segment "sparse": the
    // closed segment must re-route to the RD backend.
    let (engine, events) = replay_paired(Some(10_000));
    assert_eq!(events.len(), 1, "one burst, one result");
    assert_eq!(events[0].backend, SensingBackend::RangeDoppler);
    let registry = engine.registry().expect("telemetry on by default");
    assert_eq!(registry.counter("serve.rd.fallback").get(), 1);
    assert_eq!(registry.counter("serve.rd.segments").get(), 1);
    assert_eq!(registry.counter("serve.rd.results").get(), 1);
    assert_eq!(registry.counter("serve.rd.frames").get(), 70);
}

#[test]
fn dense_hybrid_segment_stays_on_point_backend() {
    // With the fallback disabled the same paired stream classifies
    // through the point path — RD frames are buffered but never
    // dispatched.
    let (engine, events) = replay_paired(None);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].backend, SensingBackend::PointCloud);
    let registry = engine.registry().expect("telemetry on by default");
    assert_eq!(registry.counter("serve.rd.fallback").get(), 0);
    assert_eq!(registry.counter("serve.rd.results").get(), 0);
    // A generous threshold the burst's 14-point clouds satisfy: still
    // the point path.
    let (_, events) = replay_paired(Some(3));
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].backend, SensingBackend::PointCloud);
}

#[test]
fn mixed_point_and_rd_sessions_share_the_executor() {
    // One engine, one drain: a point session and an RD session land in
    // the same micro-batch queue and both publish, each through its own
    // backend.
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            ..ServeConfig::default()
        },
    )
    .with_rd_system(toy_rd_system());
    let cfg = RdConfig::default();
    let point_session = engine.open_session();
    let rd_session = engine.open_rd_session();
    assert_eq!(
        engine.session_backend(point_session),
        Some(SensingBackend::PointCloud)
    );
    for i in 0..70 {
        let burst = (20..45).contains(&i);
        engine.push_frame(point_session, point_frame(i, if burst { 14 } else { 1 }));
        engine.push_rd_frame(rd_session, paired_rd_frame(&cfg, i, burst));
    }
    engine.close_session(point_session);
    engine.close_session(rd_session);
    let events = engine.drain();
    assert_eq!(events.len(), 2);
    let by_session = |s| {
        events
            .iter()
            .find(|e| e.session == s)
            .expect("each session publishes")
    };
    assert_eq!(
        by_session(point_session).backend,
        SensingBackend::PointCloud
    );
    assert_eq!(by_session(rd_session).backend, SensingBackend::RangeDoppler);
}

#[test]
#[should_panic(expected = "without an RD system")]
fn rd_session_requires_an_rd_system() {
    let engine = ServeEngine::new(toy_system(), ServeConfig::default());
    engine.open_rd_session();
}

#[test]
#[should_panic(expected = "range-Doppler frame pushed into a point-cloud session")]
fn rd_frames_into_point_session_panic() {
    let engine =
        ServeEngine::new(toy_system(), ServeConfig::default()).with_rd_system(toy_rd_system());
    let session = engine.open_session();
    engine.push_rd_frame(session, RdFrame::zeros(&RdConfig::default(), 0.0));
}

#[test]
fn serve_config_encoding_is_stable_without_rd_fields() {
    use gp_codec::{Decode, Encode};
    // Pre-RD configs re-encode without the additive fields (golden
    // byte-stability), and configs carrying them roundtrip.
    let default = ServeConfig::default();
    let encoded = gp_codec::to_json(&default.encode()).expect("json");
    assert!(
        !encoded.contains("rd_segmenter"),
        "additive field leaked: {encoded}"
    );
    assert!(!encoded.contains("rd_fallback_min_points"));
    let custom = ServeConfig {
        rd_fallback_min_points: Some(7),
        rd_segmenter: gp_serve::RdSegmentConfig {
            min_frames: 6,
            ..gp_serve::RdSegmentConfig::default()
        },
        ..ServeConfig::default()
    };
    let decoded = ServeConfig::decode(&custom.encode()).expect("roundtrip");
    assert_eq!(decoded, custom);
    let redecoded = ServeConfig::decode(&default.encode()).expect("default roundtrip");
    assert_eq!(redecoded, default);
}
