//! Online-vs-offline parity and worker-count determinism.
//!
//! The serving path must be a faithful streaming port of the offline
//! pipeline: replaying a captured recording frame-by-frame through
//! `gp-serve` yields the same segment boundaries (and the same dropped
//! segments) as `gp_pipeline::Preprocessor` over the whole recording,
//! and predictions are identical across 1 and N executor workers.

use gp_pipeline::{OnlineSegmenter, Preprocessor, PreprocessorConfig, Segmenter};
use gp_serve::{ServeConfig, ServeEngine, ServeEvent};
use gp_testkit::{stream_fixture, toy_system};

/// Replays the canonical stream through an engine with the given worker
/// and batch configuration; one session, events sorted by `drain`.
fn replay(workers: usize, max_batch: usize) -> Vec<ServeEvent> {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers,
            max_batch,
            ..ServeConfig::default()
        },
    );
    let stream = stream_fixture();
    let session = engine.open_session();
    for frame in &stream.frames {
        engine.push_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine.drain()
}

#[test]
fn online_segmenter_matches_offline_on_captured_stream() {
    let stream = stream_fixture();
    let offline = Segmenter::default().segment(&stream.frames);
    let mut online = OnlineSegmenter::default();
    let mut streamed: Vec<_> = stream
        .frames
        .iter()
        .filter_map(|f| online.push_frame(f))
        .collect();
    streamed.extend(online.finish());
    assert_eq!(offline, streamed);
    assert!(
        offline.len() >= 2,
        "canonical stream should contain several gestures: {offline:?}"
    );
}

#[test]
fn engine_replay_matches_offline_preprocessor() {
    let stream = stream_fixture();
    // Offline: the whole recording at once, keeping every segment that
    // survives noise canceling.
    let offline = Preprocessor::new(PreprocessorConfig::default()).process(&stream.frames);
    let offline_bounds: Vec<(usize, usize)> = offline
        .iter()
        .map(|s| (s.start_frame, s.start_frame + s.duration_frames))
        .collect();

    // Streaming: frame-by-frame through the engine.
    let events = replay(2, 4);
    let streamed_bounds: Vec<(usize, usize)> = events
        .iter()
        .map(|e| (e.segment.start, e.segment.end))
        .collect();

    assert_eq!(offline_bounds, streamed_bounds);
    // The assembled clouds must match too, not just the boundaries.
    for (sample, event) in offline.iter().zip(&events) {
        assert_eq!(sample.duration_frames, event.segment.len());
    }
}

#[test]
fn predictions_deterministic_across_worker_counts() {
    let single = replay(1, 1);
    for (workers, max_batch) in [(4, 1), (1, 8), (4, 3)] {
        let multi = replay(workers, max_batch);
        assert_eq!(single.len(), multi.len());
        for (a, b) in single.iter().zip(&multi) {
            assert_eq!(a.session, b.session);
            assert_eq!(a.segment, b.segment);
            assert_eq!(
                a.inference, b.inference,
                "prediction differs at segment {:?} with {workers} workers / batch {max_batch}",
                a.segment
            );
        }
    }
}

#[test]
fn concurrent_sessions_are_isolated() {
    // The same stream replayed through 4 concurrent sessions must give
    // every session the single-session result, regardless of how the
    // executor batches segments across sessions.
    let baseline = replay(1, 1);
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 4,
            max_batch: 3,
            ..ServeConfig::default()
        },
    );
    let stream = stream_fixture();
    let sessions: Vec<_> = (0..4).map(|_| engine.open_session()).collect();
    // Concurrent drivers on the shared runtime pool (one per session).
    let drivers = gp_serve::WorkerPool::new(sessions.len());
    drivers.scope_map(sessions.clone(), |_, session| {
        for frame in &stream.frames {
            engine.push_frame(session, frame.clone());
        }
        engine.close_session(session);
    });
    let events = engine.drain();
    assert_eq!(events.len(), baseline.len() * sessions.len());
    for &session in &sessions {
        let ours: Vec<&ServeEvent> = events.iter().filter(|e| e.session == session).collect();
        assert_eq!(ours.len(), baseline.len());
        for (a, b) in ours.iter().zip(&baseline) {
            assert_eq!(a.segment, b.segment);
            assert_eq!(a.inference, b.inference);
        }
    }

    let stats = engine.stats();
    assert_eq!(
        stats.total_frames(),
        (stream.frames.len() * sessions.len()) as u64
    );
    assert_eq!(stats.total_results(), events.len() as u64);
    assert!(stats.latency_percentile(50.0).is_some());
    assert!(stats.latency_percentile(99.0) >= stats.latency_percentile(50.0));
}

#[test]
fn idle_session_buffer_stays_bounded() {
    let engine = ServeEngine::new(toy_system(), ServeConfig::default());
    let session = engine.open_session();
    let idle = gp_radar::Frame::new(0.0, gp_pointcloud::PointCloud::new());
    for _ in 0..2_000 {
        engine.push_frame(session, idle.clone());
    }
    let (seen, buffered) = engine.session_frames(session).unwrap();
    assert_eq!(seen, 2_000);
    assert!(buffered <= 16, "idle buffer grew to {buffered}");
    engine.close_session(session);
    assert_eq!(engine.session_count(), 0);
    assert!(engine.drain().is_empty());
}

#[test]
fn closed_session_stats_evict_into_aggregate_with_exact_totals() {
    // Keep only 2 closed sessions' individual stats; replay 6 sessions
    // sequentially and check totals survive eviction bit-for-bit.
    let evicting = ServeEngine::new(
        toy_system(),
        ServeConfig {
            retain_closed_sessions: 2,
            ..ServeConfig::default()
        },
    );
    let reference = ServeEngine::new(toy_system(), ServeConfig::default());
    let stream = stream_fixture();
    for _ in 0..6 {
        for engine in [&evicting, &reference] {
            let session = engine.open_session();
            for frame in &stream.frames {
                engine.push_frame(session, frame.clone());
            }
            engine.close_session(session);
            engine.drain();
        }
    }
    let stats = evicting.stats();
    let baseline = reference.stats();
    assert_eq!(stats.sessions.len(), 2, "older closed sessions evicted");
    assert_eq!(stats.evicted_sessions, 4);
    assert_eq!(baseline.evicted_sessions, 0, "default cap keeps all 6");
    assert_eq!(stats.total_frames(), baseline.total_frames());
    assert_eq!(stats.total_segments(), baseline.total_segments());
    assert_eq!(stats.total_results(), baseline.total_results());
    assert!(stats.latency_percentile(99.0).is_some());
}

#[test]
fn pending_high_watermark_bounds_outstanding_segments() {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            pending_high_watermark: 2,
            ..ServeConfig::default()
        },
    );
    let stream = stream_fixture();
    let session = engine.open_session();
    for frame in &stream.frames {
        engine.push_frame(session, frame.clone());
        assert!(
            engine.outstanding() <= 2,
            "producer overran the pending high watermark"
        );
    }
    engine.close_session(session);
    let events = engine.drain();
    assert!(!events.is_empty(), "bounded replay still publishes results");
    assert_eq!(engine.outstanding(), 0);
}

#[test]
#[should_panic(expected = "unknown session")]
fn pushing_to_unknown_session_panics() {
    let engine = ServeEngine::new(toy_system(), ServeConfig::default());
    engine.push_frame(
        gp_serve::SessionId(99),
        gp_radar::Frame::new(0.0, gp_pointcloud::PointCloud::new()),
    );
}
