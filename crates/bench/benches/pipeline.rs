//! Criterion micro-benchmarks for every stage of the GesturePrint
//! pipeline, including the paper's §VI-B5 timing quantities
//! (preprocessing per sample, inference per sample).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gestureprint_core::{train_classifier, ModelKind, TrainConfig};
use gp_bench::{capture_fixture, sample_fixture};
use gp_dsp::cfar::{cfar_2d, CfarConfig};
use gp_dsp::fft::fft_in_place;
use gp_dsp::Complex;
use gp_models::features::{encode_sample, FeatureConfig};
use gp_pipeline::{NoiseCanceler, Preprocessor, PreprocessorConfig, Segmenter};
use gp_pointcloud::dbscan::{dbscan, DbscanConfig};
use gp_pointcloud::metrics::{chamfer, hausdorff};
use gp_radar::{Backend, RadarConfig, RadarSimulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp");
    group.bench_function("fft_256", |b| {
        let signal: Vec<Complex> = (0..256).map(|i| Complex::cis(i as f64 * 0.37)).collect();
        b.iter_batched(
            || signal.clone(),
            |mut s| fft_in_place(&mut s),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cfar_2d_16x256", |b| {
        let mut power = vec![1.0f64; 16 * 256];
        power[5 * 256 + 100] = 500.0;
        power[9 * 256 + 30] = 300.0;
        let cfg = CfarConfig::default();
        b.iter(|| cfar_2d(&power, 16, 256, &cfg))
    });
    group.finish();
}

fn bench_radar(c: &mut Criterion) {
    let mut group = c.benchmark_group("radar");
    group.sample_size(20);
    // The same canonical performance the capture/sample fixtures use.
    let perf = gp_testkit::performance(
        0,
        gp_testkit::CANONICAL_GESTURE,
        gp_testkit::CANONICAL_DISTANCE,
        5,
    );
    let (gs, ge) = perf.gesture_interval();
    let scatterers = perf.scatterers_at((gs + ge) / 2.0);

    group.bench_function("geometric_frame", |b| {
        let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 1);
        b.iter(|| sim.simulate_frame(&scatterers, 0.0))
    });
    group.bench_function("signal_chain_frame_small", |b| {
        let mut sim = RadarSimulator::new(RadarConfig::test_small(), Backend::SignalChain, 1);
        b.iter(|| sim.simulate_frame(&scatterers, 0.0))
    });
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing");
    let frames = capture_fixture();
    group.bench_function("segmentation", |b| {
        let segmenter = Segmenter::default();
        b.iter(|| segmenter.segment(&frames))
    });
    let sample = sample_fixture();
    group.bench_function("dbscan_gesture_cloud", |b| {
        let cfg = DbscanConfig::default();
        b.iter(|| dbscan(&sample.cloud, &cfg))
    });
    group.bench_function("noise_canceling", |b| {
        let canceler = NoiseCanceler::default();
        b.iter(|| canceler.clean(&sample.cloud))
    });
    // The paper's §VI-B5 "preprocessing time" per gesture sample.
    group.bench_function("full_preprocess_per_sample", |b| {
        let pre = Preprocessor::new(PreprocessorConfig::default());
        b.iter(|| pre.process(&frames))
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointcloud_metrics");
    let a = sample_fixture().cloud;
    let mut b_cloud = a.clone();
    b_cloud.translate(gp_pointcloud::Vec3::new(0.05, 0.02, -0.03));
    group.bench_function("hausdorff", |bch| bch.iter(|| hausdorff(&a, &b_cloud)));
    group.bench_function("chamfer", |bch| bch.iter(|| chamfer(&a, &b_cloud)));
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    group.sample_size(20);
    let sample = sample_fixture();
    let pairs = vec![(&sample, 0usize)];
    let quick = TrainConfig {
        epochs: 1,
        augment: None,
        ..TrainConfig::default()
    };

    for kind in [
        ModelKind::GesIdNet,
        ModelKind::PointNet,
        ModelKind::ProfileCnn,
        ModelKind::Lstm,
    ] {
        let model = train_classifier(
            &pairs,
            2,
            &TrainConfig {
                model: kind,
                ..quick.clone()
            },
        );
        group.bench_function(
            format!("inference_{}", kind.name().replace(' ', "_")),
            |b| b.iter(|| model.predict(&sample)),
        );
    }
    group.bench_function("gesidnet_train_step", |b| {
        b.iter_batched(
            || train_classifier(&pairs, 2, &quick),
            |_m| (),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("feature_encoding", |b| {
        let cfg = FeatureConfig::default();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            encode_sample(&sample, &cfg, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dsp,
    bench_radar,
    bench_preprocessing,
    bench_metrics,
    bench_models
);
criterion_main!(benches);
