//! Socket-front benchmarks: wire codec micro-benchmarks plus the
//! fairness report — the load test behind the gp-net design claim that
//! per-session admission isolates tenants.
//!
//! `fairness_report` runs the same loopback workload twice: once with
//! only well-behaved ("quiet") sessions, once with a pack of hot
//! tenants blasting far past their token-bucket budget into the same
//! engine. It then checks the two properties the socket front promises:
//!
//! 1. **Isolation** — the quiet sessions' pooled p99 segment-to-result
//!    latency moves by less than 20% between the idle and overloaded
//!    runs (the hot tenants' overflow is shed at *their* budgets, not
//!    absorbed by everyone's tail).
//! 2. **Exact books** — every frame the server decoded is admitted,
//!    budget-shed, or capacity-shed; nothing is lost or double-counted,
//!    and the client-side Bye ledgers agree with the engine's stats.
//!
//! Scale: ~1000 quiet loopback sessions by default (override with
//! `GP_NET_SESSIONS`, capped to the process fd limit); criterion's
//! `--test` smoke mode scales down to 64 sessions and downgrades the
//! isolation bound to a warning, since CI smoke boxes are noisy.

use criterion::{criterion_group, Criterion};
use gp_net::wire::{from_wire, to_wire};
use gp_net::{ClientMsg, NetClient, NetConfig, NetListener, NetServer};
use gp_pointcloud::{Point, PointCloud, Vec3};
use gp_radar::Frame;
use gp_serve::{AdmissionConfig, Histogram, ServeEngine, SessionId};
use gp_testkit::{stream_fixture, toy_system};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_FRAME: usize = 1 << 20;
/// Paced quiet-session frame rate and stream length. 5 fps per session
/// keeps the aggregate (5k fps at 1000 sessions) inside what a 1-core
/// box paces cleanly — past that, driver slippage creates catch-up
/// bursts whose queueing spikes swamp the p99 being measured.
const QUIET_FPS: f64 = 5.0;
const TICKS: usize = 36;
/// Frames a hot tenant blasts per quiet tick (16× the quiet rate).
const HOT_FANOUT: usize = 16;
/// Per-session admission budget. The refill rate clears the 20 fps
/// quiet pace with headroom but binds 320 fps hot tenants; the burst
/// covers an entire quiet stream, so a driver thread that falls behind
/// the pacer on a loaded box and catches up in one burst never sheds
/// its own well-behaved session.
const BUDGET: (f64, f64) = (25.0, TICKS as f64);

fn bench_wire(c: &mut Criterion) {
    let frame = stream_fixture().frames[40].clone();
    let mut group = c.benchmark_group("net_wire");
    group.sample_size(10);

    group.bench_function("frame_encode", |b| {
        b.iter(|| to_wire(&ClientMsg::Frame(frame.clone()), MAX_FRAME))
    });
    group.bench_function("frame_decode", |b| {
        let wire = to_wire(&ClientMsg::Frame(frame.clone()), MAX_FRAME);
        let mut decoder = gp_codec::FrameDecoder::new(MAX_FRAME);
        decoder.extend(&wire);
        let payload = decoder.next().expect("framed").expect("one frame");
        b.iter(|| from_wire::<ClientMsg>(&payload).expect("decode"))
    });
    group.finish();
}

/// A synthetic radar frame: bursts of points close segments, single
/// points idle. `phase` staggers each session's burst window so a
/// thousand segments don't all close on the same tick.
fn bench_frame(tick: usize, phase: usize) -> Frame {
    // Multiplying by a prime scatters the windows uniformly over the
    // stream, so a thousand sessions' segments complete as a steady
    // trickle rather than one synchronized wave into the worker.
    let window = 4 + (phase * 13) % 20;
    let burst = (window..window + 6).contains(&tick);
    let points = if burst { 14 } else { 1 };
    let cloud: PointCloud = (0..points)
        .map(|k| {
            Point::new(
                Vec3::new(k as f64 * 0.05, 1.2, 1.0 + (tick as f64 * 0.3).sin() * 0.2),
                0.4,
                15.0,
            )
        })
        .collect();
    Frame::new(tick as f64 / QUIET_FPS, cloud)
}

/// The outcome of one loopback phase.
struct PhaseOutcome {
    /// Pooled p99 over the quiet sessions' segment-to-result latencies.
    quiet_p99: Duration,
    /// The full pooled quiet-session latency distribution (exact
    /// histogram merge), carried into the snapshot artifact.
    quiet_latency: Histogram,
    quiet_shed: u64,
    hot_admitted: u64,
    hot_shed_budget: u64,
    frames_sent: u64,
    decoded: u64,
    accounted: u64,
    elapsed: Duration,
}

/// Runs one phase: `quiet` paced sessions (plus `hot` over-budget
/// tenants) against a fresh engine + socket server, closes everything
/// gracefully, and reconciles the ledgers.
fn run_phase(quiet: usize, hot: usize) -> PhaseOutcome {
    let engine = Arc::new(ServeEngine::new(
        toy_system(),
        gp_serve::ServeConfig {
            admission: Some(AdmissionConfig::new(BUDGET.0, BUDGET.1)),
            retain_closed_sessions: quiet + hot + 8,
            ..gp_bench::serve_config(1, 32)
        },
    ));
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let server = NetServer::spawn(
        engine.clone(),
        listener,
        NetConfig {
            // Latencies come from engine stats; skipping result frames
            // keeps the reactor's write side out of the measurement.
            send_results: false,
            // A deliberate batching cadence: the deterministic flush
            // wait dominates each latency sample, so the p99 comparison
            // measures whether overload breaks the cadence rather than
            // the 1-core scheduler's multi-millisecond jitter.
            flush_interval: Duration::from_millis(80),
            ..NetConfig::default()
        },
    )
    .expect("spawn server");
    let addr = server.local_addr().expect("tcp address");

    let started = Instant::now();
    let driver_threads = 2.min(quiet.max(1));
    let per_thread = quiet.div_ceil(driver_threads);
    let mut handles = Vec::new();
    for t in 0..driver_threads {
        let count = per_thread.min(quiet.saturating_sub(t * per_thread));
        if count == 0 {
            continue;
        }
        handles.push(std::thread::spawn(move || {
            let mut clients: Vec<NetClient> = (0..count)
                .map(|_| NetClient::connect_tcp(addr, MAX_FRAME).expect("connect quiet"))
                .collect();
            let sessions: Vec<u64> = clients.iter().map(|c| c.session()).collect();
            let start = Instant::now();
            let interval = Duration::from_secs_f64(1.0 / QUIET_FPS);
            let mut sent = 0u64;
            for tick in 0..TICKS {
                if let Some(wait) =
                    (start + interval * tick as u32).checked_duration_since(Instant::now())
                {
                    std::thread::sleep(wait);
                }
                for (ci, client) in clients.iter_mut().enumerate() {
                    let frame = bench_frame(tick, t * per_thread + ci);
                    client.send_frame(&frame).expect("send quiet frame");
                    sent += 1;
                }
            }
            let mut shed = 0u64;
            let mut admitted = 0u64;
            for client in clients.drain(..) {
                let report = client.close().expect("graceful quiet close");
                shed += report.ledger.shed_budget + report.ledger.shed_capacity;
                admitted += report.ledger.admitted;
            }
            (sessions, sent, admitted, shed)
        }));
    }
    let hot_handle = (hot > 0).then(|| {
        std::thread::spawn(move || {
            let mut clients: Vec<NetClient> = (0..hot)
                .map(|_| NetClient::connect_tcp(addr, MAX_FRAME).expect("connect hot"))
                .collect();
            let sessions: Vec<u64> = clients.iter().map(|c| c.session()).collect();
            let start = Instant::now();
            // A continuous firehose, paced at HOT_FANOUT× the quiet
            // rate: most of it is shed at the tenant's own budget
            // before it can touch the shared gate. The flood is
            // motionless single-point frames — a frame-flood attack —
            // so the report isolates admission behavior: budget
            // shedding of an *admitted* gesture stream would otherwise
            // let the segmenter stitch the surviving subset into
            // arbitrarily long segments, and their preprocessing cost
            // would swamp the number being measured.
            let interval = Duration::from_secs_f64(1.0 / (QUIET_FPS * HOT_FANOUT as f64));
            let mut sent = 0u64;
            for pulse in 0..TICKS * HOT_FANOUT {
                if let Some(wait) =
                    (start + interval * pulse as u32).checked_duration_since(Instant::now())
                {
                    std::thread::sleep(wait);
                }
                let flood = Frame::new(
                    pulse as f64 / (QUIET_FPS * HOT_FANOUT as f64),
                    std::iter::once(Point::new(Vec3::new(0.0, 1.2, 1.0), 0.0, 15.0)).collect(),
                );
                for client in clients.iter_mut() {
                    client.send_frame(&flood).expect("send hot frame");
                    sent += 1;
                }
            }
            let mut admitted = 0u64;
            let mut shed_budget = 0u64;
            let mut shed_capacity = 0u64;
            for client in clients.drain(..) {
                let report = client.close().expect("graceful hot close");
                admitted += report.ledger.admitted;
                shed_budget += report.ledger.shed_budget;
                shed_capacity += report.ledger.shed_capacity;
            }
            (sessions, sent, admitted, shed_budget, shed_capacity)
        })
    });

    let mut quiet_sessions: Vec<u64> = Vec::new();
    let mut frames_sent = 0u64;
    let mut quiet_admitted = 0u64;
    let mut quiet_shed = 0u64;
    for handle in handles {
        let (sessions, sent, admitted, shed) = handle.join().expect("quiet driver");
        quiet_sessions.extend(sessions);
        frames_sent += sent;
        quiet_admitted += admitted;
        quiet_shed += shed;
    }
    let mut hot_admitted = 0u64;
    let mut hot_shed_budget = 0u64;
    let mut hot_shed_capacity = 0u64;
    if let Some(handle) = hot_handle {
        let (_, sent, admitted, shed_budget, shed_capacity) = handle.join().expect("hot driver");
        frames_sent += sent;
        hot_admitted += admitted;
        hot_shed_budget += shed_budget;
        hot_shed_capacity += shed_capacity;
    }
    let elapsed = started.elapsed();

    engine.drain();
    let net = server.stats();
    server.shutdown();
    let stats = engine.stats();

    // Pooled quiet latency distribution (graceful closes keep every
    // session's stats entry around; see retain_closed_sessions above).
    // Histogram merge is exact: the pooled percentile weighs every
    // session's samples, not a subsample.
    let mut quiet_latency = Histogram::new();
    for id in &quiet_sessions {
        if let Some(s) = stats.sessions.get(&SessionId(*id)) {
            quiet_latency.merge(&s.latency);
        }
    }
    assert!(
        !quiet_latency.is_empty(),
        "quiet sessions must produce latency samples"
    );
    let quiet_p99 = quiet_latency
        .percentile_duration(99.0)
        .expect("non-empty histogram has a p99");

    // Exact books, engine side: every decoded frame is admitted or shed.
    let accounted = stats.total_frames() + stats.total_shed_budget() + stats.total_shed_frames();
    assert_eq!(
        accounted, net.decoded_frames,
        "decoded == admitted + shed_budget + shed_capacity, exactly"
    );
    // Exact books, client side: graceful closes mean the server decoded
    // every frame written, and the Bye ledgers must agree with it.
    assert_eq!(net.decoded_frames, frames_sent, "no frame lost in transit");
    assert_eq!(
        quiet_admitted + quiet_shed + hot_admitted + hot_shed_budget + hot_shed_capacity,
        frames_sent,
        "every frame sent appears in exactly one Bye ledger bucket"
    );

    PhaseOutcome {
        quiet_p99,
        quiet_latency,
        quiet_shed,
        hot_admitted,
        hot_shed_budget,
        frames_sent,
        decoded: net.decoded_frames,
        accounted,
        elapsed,
    }
}

/// Number of quiet sessions: `GP_NET_SESSIONS` override, else 1000
/// (64 in criterion `--test` smoke mode), always capped so two fds per
/// session fit under the process limit.
fn session_scale(smoke: bool) -> usize {
    let requested = std::env::var("GP_NET_SESSIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if smoke { 64 } else { 1000 });
    requested.min(fd_budget()).max(4)
}

/// How many sessions the fd soft limit allows: each loopback session
/// holds two descriptors (client end + accepted end) in this process.
fn fd_budget() -> usize {
    let soft = std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits
                .lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| {
                    l.split_whitespace()
                        .nth(3)
                        .and_then(|v| v.parse::<usize>().ok())
                })
        })
        .unwrap_or(1024);
    soft.saturating_sub(128) / 2
}

fn fairness_report(smoke: bool) {
    let quiet = session_scale(smoke);
    let hot = (quiet / 64).clamp(1, 16);

    println!(
        "net fairness: idle baseline ({quiet} quiet sessions, {TICKS} frames @ {QUIET_FPS} fps)..."
    );
    let idle = run_phase(quiet, 0);
    println!(
        "  idle: {} frames in {:.2?}, quiet p99 {:.2?}, shed {}",
        idle.frames_sent, idle.elapsed, idle.quiet_p99, idle.quiet_shed
    );

    println!(
        "net fairness: overload ({quiet} quiet + {hot} hot tenants at {HOT_FANOUT}× budget)..."
    );
    let over = run_phase(quiet, hot);
    println!(
        "  overload: {} frames in {:.2?}, quiet p99 {:.2?}, quiet shed {}, \
         hot admitted {} / shed {}",
        over.frames_sent,
        over.elapsed,
        over.quiet_p99,
        over.quiet_shed,
        over.hot_admitted,
        over.hot_shed_budget
    );

    // Quiet tenants never pay for the hot ones' overflow with sheds...
    assert_eq!(
        over.quiet_shed, 0,
        "quiet sessions must not shed under overload"
    );
    assert!(
        over.hot_shed_budget > 0,
        "hot tenants must be shed at their own budgets"
    );
    // ...and the books balance exactly in both phases (already asserted
    // per-phase; restated here for the printed report).
    assert_eq!(idle.accounted, idle.decoded);
    assert_eq!(over.accounted, over.decoded);

    // Isolation: the quiet pooled p99 moves <20% under overload.
    let idle_s = idle.quiet_p99.as_secs_f64().max(1e-9);
    let delta = (over.quiet_p99.as_secs_f64() - idle_s).abs() / idle_s;
    println!("  quiet p99 delta under overload: {:.1}%", delta * 100.0);
    let strict = !smoke && std::env::var("GP_NET_STRICT").map_or(true, |v| v != "0");
    if delta >= 0.20 {
        let msg = format!(
            "quiet p99 moved {:.1}% under hot-tenant overload (bound: <20%): \
             idle {:.2?} vs overload {:.2?}",
            delta * 100.0,
            idle.quiet_p99,
            over.quiet_p99
        );
        if strict {
            panic!("{msg}");
        }
        eprintln!("warning (smoke-mode bound downgraded): {msg}");
    }

    write_artifact(quiet, hot, &idle, &over, delta);
}

/// Persists the fairness run in the `gp-telemetry` snapshot schema
/// (wrapped in the `gestureprint.telemetry` artifact envelope): exact
/// ledger counters, the *full* pooled quiet-latency distributions per
/// phase, and the workload shape as attrs — so the isolation numbers
/// are machine-comparable across runs at any percentile, not only the
/// p99 this run happened to print.
fn write_artifact(quiet: usize, hot: usize, idle: &PhaseOutcome, over: &PhaseOutcome, delta: f64) {
    use gp_codec::{Encode, Value};
    use gp_serve::TelemetrySnapshot;
    let mut snapshot = TelemetrySnapshot::new();
    for (phase, p) in [("idle", idle), ("overload", over)] {
        let c = |name: &str, v: u64| (format!("fairness.{phase}.{name}"), v);
        snapshot.counters.extend([
            c("frames_sent", p.frames_sent),
            c("decoded", p.decoded),
            c("accounted", p.accounted),
            c("quiet_shed", p.quiet_shed),
            c("hot_admitted", p.hot_admitted),
            c("hot_shed_budget", p.hot_shed_budget),
        ]);
        snapshot.histograms.insert(
            format!("fairness.{phase}.quiet_latency"),
            p.quiet_latency.clone(),
        );
        snapshot.attrs.insert(
            format!("fairness.{phase}.elapsed_s"),
            p.elapsed.as_secs_f64().encode(),
        );
    }
    snapshot.attrs.extend([
        ("bench".to_owned(), Value::Str("net_fairness".into())),
        ("quiet_sessions".to_owned(), quiet.encode()),
        ("hot_sessions".to_owned(), hot.encode()),
        ("quiet_fps".to_owned(), QUIET_FPS.encode()),
        ("hot_fanout".to_owned(), HOT_FANOUT.encode()),
        ("budget_rate".to_owned(), BUDGET.0.encode()),
        ("budget_burst".to_owned(), BUDGET.1.encode()),
        ("quiet_p99_delta".to_owned(), delta.encode()),
    ]);
    let artifact = gp_bench::telemetry_artifact(&snapshot);
    // net_fairness.json is the scratch copy of the latest local run;
    // BENCH_net_fairness.json is the committed trajectory artifact.
    for name in ["net_fairness.json", "BENCH_net_fairness.json"] {
        let path = std::path::Path::new("results").join(name);
        match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, &artifact)) {
            Ok(()) => println!("telemetry artifact: {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

criterion_group!(benches, bench_wire);

fn main() {
    benches();
    let smoke = std::env::args().any(|a| a == "--test");
    fairness_report(smoke);
}
