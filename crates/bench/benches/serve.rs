//! Serving-path benchmarks: streaming replay throughput and
//! segment-to-result latency through `gp-serve`.
//!
//! The criterion benchmarks time full stream replays under different
//! worker/batch configurations; `throughput_report` then prints the
//! operational numbers (frames/sec, p50/p99 latency) from a multi-session
//! replay, the serving analogue of the paper's §VI-B5 timing table.

use criterion::{criterion_group, Criterion};
use gp_serve::{ServeConfig, ServeEngine};
use gp_testkit::{stream_fixture, toy_system, GestureStream};

/// Replays `stream` through one fresh session of `engine`, returning the
/// number of published results.
fn replay_once(engine: &ServeEngine, stream: &GestureStream) -> usize {
    let session = engine.open_session();
    for frame in &stream.frames {
        engine.push_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine.drain().len()
}

fn bench_serve(c: &mut Criterion) {
    let stream = stream_fixture();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    group.bench_function("stream_replay_1worker", |b| {
        let engine = ServeEngine::new(
            toy_system(),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                ..ServeConfig::default()
            },
        );
        b.iter(|| replay_once(&engine, &stream))
    });
    group.bench_function("stream_replay_pooled_batched", |b| {
        let engine = ServeEngine::new(
            toy_system(),
            ServeConfig {
                workers: 0,
                max_batch: 4,
                ..ServeConfig::default()
            },
        );
        b.iter(|| replay_once(&engine, &stream))
    });
    group.bench_function("online_segmentation_per_frame", |b| {
        let mut online = gp_pipeline::OnlineSegmenter::default();
        let mut i = 0usize;
        b.iter(|| {
            let frame = &stream.frames[i % stream.frames.len()];
            i += 1;
            online.push_frame(frame)
        })
    });
    group.finish();
}

/// One multi-session replay with operational numbers: aggregate
/// frames/sec and p50/p99 segment-to-result latency. Runs in smoke mode
/// too (it is itself a smoke test of the multi-session path).
fn throughput_report() {
    const SESSIONS: usize = 8;
    let stream = stream_fixture();
    let engine = ServeEngine::new(toy_system(), ServeConfig::default());
    let sessions: Vec<_> = (0..SESSIONS).map(|_| engine.open_session()).collect();

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for &session in &sessions {
            let engine = &engine;
            let frames = &stream.frames;
            scope.spawn(move || {
                for frame in frames {
                    engine.push_frame(session, frame.clone());
                }
                engine.close_session(session);
            });
        }
    });
    let results = engine.drain().len();
    let elapsed = start.elapsed();

    let stats = engine.stats();
    let fps = stats.total_frames() as f64 / elapsed.as_secs_f64();
    let p50 = stats.latency_percentile(50.0).unwrap_or_default();
    let p99 = stats.latency_percentile(99.0).unwrap_or_default();
    println!(
        "serve throughput: {SESSIONS} sessions × {} frames → {results} results \
         in {elapsed:.2?} | {fps:.0} frames/s | latency p50 {p50:.2?} p99 {p99:.2?}",
        stream.frames.len(),
    );
}

criterion_group!(benches, bench_serve);

fn main() {
    benches();
    throughput_report();
}
