//! Serving-path benchmarks: streaming replay throughput and
//! segment-to-result latency through `gp-serve`.
//!
//! The criterion benchmarks time full stream replays under different
//! worker/batch configurations (burst mode, frames pushed as fast as
//! possible); `throughput_report` then replays a multi-session workload
//! *paced* at a fixed frame rate with deterministic jitter and prints
//! the operational numbers (frames/sec, p50/p99 latency) — steady-state
//! latency, the serving analogue of the paper's §VI-B5 timing table.
//!
//! All engines and the online-segmentation micro-bench take their
//! preprocessing parameters from [`gp_bench::serve_config`], the single
//! configuration source shared with `examples/streaming_serve.rs`.

use criterion::{criterion_group, Criterion};
use gp_bench::{drive_sessions, serve_config, ReplayPacer};
use gp_serve::ServeEngine;
use gp_testkit::{stream_fixture, toy_system, GestureStream};

/// Replays `stream` through one fresh session of `engine`, returning the
/// number of published results.
fn replay_once(engine: &ServeEngine, stream: &GestureStream) -> usize {
    let session = engine.open_session();
    for frame in &stream.frames {
        engine.push_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine.drain().len()
}

fn bench_serve(c: &mut Criterion) {
    let stream = stream_fixture();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    group.bench_function("stream_replay_1worker", |b| {
        let engine = ServeEngine::new(toy_system(), serve_config(1, 1));
        b.iter(|| replay_once(&engine, &stream))
    });
    group.bench_function("stream_replay_pooled_batched", |b| {
        let engine = ServeEngine::new(toy_system(), serve_config(0, 4));
        b.iter(|| replay_once(&engine, &stream))
    });
    group.bench_function("online_segmentation_per_frame", |b| {
        // Built from the shared serving config so the segmenter under
        // the microscope is exactly the one the engines run.
        let mut online =
            gp_pipeline::OnlineSegmenter::new(serve_config(1, 1).preprocessor.segmenter);
        let mut i = 0usize;
        b.iter(|| {
            let frame = &stream.frames[i % stream.frames.len()];
            i += 1;
            online.push_frame(frame)
        })
    });
    group.finish();
}

/// One paced multi-session replay with operational numbers: aggregate
/// frames/sec and p50/p99 segment-to-result latency. Pacing replays the
/// 10 fps streams at 20× real time (200 fps) with ±10% deterministic
/// jitter, so the latencies below are steady-state, not burst. Runs in
/// smoke mode too (it is itself a smoke test of the multi-session path).
fn throughput_report() {
    const SESSIONS: usize = 8;
    const REPLAY_FPS: f64 = 200.0;
    let stream = stream_fixture();
    let config = serve_config(0, 8);
    let engine = ServeEngine::new(toy_system(), config.clone());
    let sessions: Vec<_> = (0..SESSIONS)
        .map(|_| (engine.open_session(), &stream))
        .collect();

    let start = std::time::Instant::now();
    drive_sessions(
        &engine,
        &sessions,
        Some(ReplayPacer::new(REPLAY_FPS, 0.1, 42)),
    );
    let results = engine.drain().len();
    let elapsed = start.elapsed();

    let stats = engine.stats();
    let fps = stats.total_frames() as f64 / elapsed.as_secs_f64();
    let p50 = stats.latency_percentile(50.0).unwrap_or_default();
    let p99 = stats.latency_percentile(99.0).unwrap_or_default();
    println!(
        "serve steady-state ({REPLAY_FPS:.0} fps paced): {SESSIONS} sessions × {} frames \
         → {results} results in {elapsed:.2?} | {fps:.0} frames/s | \
         latency p50 {p50:.2?} p99 {p99:.2?}",
        stream.frames.len(),
    );
    if let Some(spread) = gp_bench::per_session_p99_spread(&stats) {
        println!(
            "cross-session p99 spread: min {:.2?} median {:.2?} max {:.2?} \
             (tight spread = no session absorbs the tail for the others)",
            spread.min, spread.median, spread.max,
        );
    }

    // Persist the same numbers as a gp-codec report artifact so runs
    // are machine-comparable, not just human-readable.
    let artifact =
        gp_bench::serve_report_artifact(&config, SESSIONS, REPLAY_FPS, &stats, results, elapsed);
    let path = std::path::Path::new("results").join("serve_steady_state.json");
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, &artifact)) {
        Ok(()) => println!("report artifact: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }

    // Export the replay's full telemetry registry — the per-stage
    // latency breakdown behind the pooled p50/p99 above — as the
    // committed BENCH trajectory artifact.
    if let Some(mut snapshot) = engine.telemetry_snapshot() {
        use gp_codec::{Encode, Value};
        snapshot
            .attrs
            .insert("bench".into(), Value::Str("serve_steady_state".into()));
        snapshot.attrs.insert("sessions".into(), SESSIONS.encode());
        snapshot
            .attrs
            .insert("replay_fps".into(), REPLAY_FPS.encode());
        snapshot
            .attrs
            .insert("frames_per_session".into(), stream.frames.len().encode());
        print!("{}", snapshot.render_table("serve.stage."));
        let bench_path = std::path::Path::new("results").join("BENCH_serve.json");
        match std::fs::write(&bench_path, gp_bench::telemetry_artifact(&snapshot)) {
            Ok(()) => println!("telemetry artifact: {}", bench_path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", bench_path.display()),
        }
    }
}

criterion_group!(benches, bench_serve);

fn main() {
    benches();
    throughput_report();
}
