//! Range-Doppler path benchmarks: frame synthesis, feature extraction,
//! RdNet inference, and streaming replay through `gp-serve` sessions
//! opened in RD mode.
//!
//! The criterion benchmarks time the per-stage costs; `rd_report` then
//! replays a small multi-session RD workload through the engine and
//! exports the telemetry registry (stage histograms + `serve.rd.*`
//! counters) as the committed `BENCH_rd.json` trajectory artifact —
//! the RD counterpart of `benches/serve.rs`.

use criterion::{criterion_group, Criterion};
use gp_bench::serve_config;
use gp_rd::{extract_sample, RdConfig, RdFeatureConfig, RdFrame, RdSynthesizer};
use gp_serve::ServeEngine;
use gp_testkit::{
    performance, rd_capture, rd_sample, toy_rd_system, toy_system, CANONICAL_DISTANCE,
    CANONICAL_GESTURE,
};

/// Replays one RD capture through a fresh RD session, returning the
/// number of published results.
fn replay_rd_once(engine: &ServeEngine, frames: &[RdFrame]) -> usize {
    let session = engine.open_rd_session();
    for frame in frames {
        engine.push_rd_frame(session, frame.clone());
    }
    engine.close_session(session);
    engine.drain().len()
}

fn bench_rd(c: &mut Criterion) {
    let mut group = c.benchmark_group("rd");
    group.sample_size(10);

    group.bench_function("synthesize_capture", |b| {
        let perf = performance(0, CANONICAL_GESTURE, CANONICAL_DISTANCE, 7);
        let synth = RdSynthesizer::new(RdConfig::default(), 7);
        b.iter(|| synth.synthesize(&perf))
    });
    group.bench_function("feature_extract_segment", |b| {
        let sample = rd_sample(0, CANONICAL_GESTURE, 3);
        let config = RdFeatureConfig::default();
        b.iter(|| extract_sample(&sample, &config))
    });
    group.bench_function("rdnet_infer", |b| {
        let system = toy_rd_system();
        let sample = rd_sample(0, CANONICAL_GESTURE, 3);
        b.iter(|| system.infer_rd(&sample))
    });
    group.bench_function("rd_stream_replay", |b| {
        let engine =
            ServeEngine::new(toy_system(), serve_config(1, 1)).with_rd_system(toy_rd_system());
        let (_, frames) = rd_capture(0, CANONICAL_GESTURE, 3);
        b.iter(|| replay_rd_once(&engine, &frames))
    });
    group.finish();
}

/// One burst multi-session RD replay with operational numbers, exported
/// as the committed `BENCH_rd.json` telemetry artifact. Runs in smoke
/// mode too (it is itself a smoke test of the RD serving path).
fn rd_report() {
    const SESSIONS: usize = 4;
    let engine = ServeEngine::new(toy_system(), serve_config(0, 4)).with_rd_system(toy_rd_system());
    let captures: Vec<_> = (0..SESSIONS)
        .map(|s| rd_capture(s % 2, CANONICAL_GESTURE, 3 + s as u64).1)
        .collect();
    let frames_per_session = captures[0].len();

    let start = std::time::Instant::now();
    let sessions: Vec<_> = (0..SESSIONS).map(|_| engine.open_rd_session()).collect();
    for (session, frames) in sessions.iter().zip(&captures) {
        for frame in frames {
            engine.push_rd_frame(*session, frame.clone());
        }
        engine.close_session(*session);
    }
    let results = engine.drain().len();
    let elapsed = start.elapsed();

    let stats = engine.stats();
    let fps = stats.total_frames() as f64 / elapsed.as_secs_f64();
    println!(
        "rd replay (burst): {SESSIONS} sessions × ~{frames_per_session} frames → {results} \
         results in {elapsed:.2?} | {fps:.0} frames/s | latency p50 {:.2?} p99 {:.2?}",
        stats.latency_percentile(50.0).unwrap_or_default(),
        stats.latency_percentile(99.0).unwrap_or_default(),
    );

    if let Some(mut snapshot) = engine.telemetry_snapshot() {
        use gp_codec::{Encode, Value};
        snapshot
            .attrs
            .insert("bench".into(), Value::Str("rd_serve".into()));
        snapshot
            .attrs
            .insert("backend".into(), Value::Str("range_doppler".into()));
        snapshot.attrs.insert("sessions".into(), SESSIONS.encode());
        snapshot
            .attrs
            .insert("frames_per_session".into(), frames_per_session.encode());
        print!("{}", snapshot.render_table("serve.stage."));
        let bench_path = std::path::Path::new("results").join("BENCH_rd.json");
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&bench_path, gp_bench::telemetry_artifact(&snapshot)))
        {
            Ok(()) => println!("telemetry artifact: {}", bench_path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", bench_path.display()),
        }
    }
}

criterion_group!(benches, bench_rd);

fn main() {
    benches();
    rd_report();
}
