//! Batched vs sequential inference through the full GesturePrint stack.
//!
//! `GesturePrint::infer_batch` routes every sample through
//! `GesIDNet::forward_batch` (deduplicated grouping + multi-row
//! kernels), so a micro-batch of N segments must cost strictly less
//! than N single `infer` calls — the pair of benchmarks below makes
//! that claim measurable, and the parity assertion at the top makes it
//! meaningless to win by diverging: predictions are checked
//! bit-identical before anything is timed.

use criterion::{criterion_group, Criterion};
use gp_pipeline::LabeledSample;
use gp_testkit::{toy_labeled_samples, toy_system};

const BATCH: usize = 8;

fn bench_batch_inference(c: &mut Criterion) {
    let system = toy_system();
    let samples = toy_labeled_samples(2); // 2 gestures × 2 users × 2 reps
    assert_eq!(samples.len(), BATCH);
    let refs: Vec<&LabeledSample> = samples.iter().collect();

    // Parity gate: the comparison is only meaningful while batched and
    // sequential inference agree bit-for-bit.
    let batched = system.infer_batch(&refs);
    for (i, sample) in samples.iter().enumerate() {
        assert_eq!(batched[i], system.infer(sample), "sample {i} diverged");
    }

    let mut group = c.benchmark_group("inference");
    group.bench_function(format!("infer_sequential_{BATCH}"), |b| {
        b.iter(|| {
            refs.iter()
                .map(|sample| system.infer(sample))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function(format!("infer_batch_{BATCH}"), |b| {
        b.iter(|| system.infer_batch(&refs))
    });
    group.finish();
}

criterion_group!(benches, bench_batch_inference);

fn main() {
    benches();
}
