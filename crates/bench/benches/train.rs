//! Mini-batch training throughput: `train_step_batch` vs sequential
//! `train_step` calls on GesIDNet, plus an instrumented
//! `train_classifier` run whose per-stage histograms
//! (`train.stage.epoch`, `train.stage.batch_step`) are exported as
//! `results/BENCH_train.json`.
//!
//! The comparison is gradient-parity-gated: before timing, one batched
//! step is checked against the summed per-sample gradients (relative
//! tolerance — the batched backward associates float additions
//! differently, see `gp_models::PointModel::train_step_batch`).

use criterion::{criterion_group, Criterion};
use gestureprint_core::train::{train_classifier_instrumented, ModelKind, TrainConfig};
use gp_models::features::{encode, FeatureConfig, ModelInput};
use gp_models::{GesIDNet, GesIDNetConfig, PointModel};
use gp_nn::Parameterized;
use gp_pipeline::LabeledSample;
use gp_testkit::toy_labeled_samples;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const BATCH: usize = 8;

fn encoded_inputs(samples: &[LabeledSample]) -> Vec<(ModelInput, usize)> {
    let feature = FeatureConfig {
        num_points: 24,
        ..FeatureConfig::default()
    };
    samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut rng = StdRng::seed_from_u64(7 ^ (i as u64).wrapping_mul(0x9E37));
            (
                encode(&s.cloud, &s.frame_clouds, &feature, &mut rng),
                s.user,
            )
        })
        .collect()
}

fn grads_of(net: &mut GesIDNet) -> Vec<f32> {
    let mut g = Vec::new();
    net.for_each_param(&mut |_, gs| g.extend_from_slice(gs));
    g
}

fn bench_train(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");

    let samples = toy_labeled_samples(2); // 2 gestures × 2 users × 2 reps
    let encoded = encoded_inputs(&samples);
    assert_eq!(encoded.len(), BATCH);
    let inputs: Vec<&ModelInput> = encoded.iter().map(|(x, _)| x).collect();
    let labels: Vec<usize> = encoded.iter().map(|(_, y)| *y).collect();

    let mut rng = StdRng::seed_from_u64(0);
    let proto = GesIDNet::new(GesIDNetConfig::for_classes(2), &mut rng);

    // Gradient-parity gate: one batched step must accumulate the same
    // total gradient as the per-sample steps, within float-association
    // tolerance. Timing a diverging path would be meaningless.
    {
        let mut seq = proto.clone();
        let mut bat = proto.clone();
        for (x, &y) in inputs.iter().zip(&labels) {
            seq.train_step(x, y);
        }
        bat.train_step_batch(&inputs, &labels);
        for (i, (s, b)) in grads_of(&mut seq)
            .iter()
            .zip(&grads_of(&mut bat))
            .enumerate()
        {
            let rel = (s - b).abs() / (1e-4 + s.abs().max(b.abs()));
            assert!(rel < 1e-2, "grad {i} diverged: {s} vs {b}");
        }
    }

    // Criterion benches (fed to the CI regression gate). Gradients
    // accumulate into fixed-size buffers, so repeated iterations don't
    // grow state; zeroing per iteration would only time memset.
    let mut group = c.benchmark_group("train");
    let mut seq_net = proto.clone();
    group.bench_function(format!("train_step_sequential_{BATCH}"), |b| {
        b.iter(|| {
            let mut loss = 0.0f32;
            for (x, &y) in inputs.iter().zip(&labels) {
                loss += seq_net.train_step(x, y);
            }
            loss
        })
    });
    let mut bat_net = proto.clone();
    group.bench_function(format!("train_step_batch_{BATCH}"), |b| {
        b.iter(|| bat_net.train_step_batch(&inputs, &labels))
    });
    group.finish();

    // Manual medians for the speedup report.
    let iters = if smoke { 3 } else { 20 };
    let time_runs = |f: &mut dyn FnMut() -> f32| -> f64 {
        black_box(f());
        let mut times: Vec<f64> = (0..iters)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        times[times.len() / 2]
    };
    let mut seq_net = proto.clone();
    let seq_time = time_runs(&mut || {
        let mut loss = 0.0f32;
        for (x, &y) in inputs.iter().zip(&labels) {
            loss += seq_net.train_step(x, y);
        }
        loss
    });
    let mut bat_net = proto.clone();
    let bat_time = time_runs(&mut || bat_net.train_step_batch(&inputs, &labels));
    let speedup = seq_time / bat_time;
    println!(
        "train_step batch {BATCH}: sequential {:.2}ms vs batched {:.2}ms ({speedup:.2}x)",
        seq_time * 1e3,
        bat_time * 1e3,
    );
    if !smoke {
        assert!(
            speedup > 1.0,
            "one batched step must beat {BATCH} sequential train_step calls: {speedup:.2}x"
        );
    }

    // Instrumented end-to-end training: epoch/batch-step histograms from
    // the real `train_classifier` loop, exported as the committed
    // trajectory artifact.
    let registry = gp_telemetry::Registry::new();
    let config = TrainConfig {
        model: ModelKind::GesIdNet,
        epochs: if smoke { 2 } else { 6 },
        batch_size: BATCH,
        augment: None,
        feature: FeatureConfig {
            num_points: 24,
            ..FeatureConfig::default()
        },
        ..TrainConfig::default()
    };
    let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
    let _ = train_classifier_instrumented(&pairs, 2, &config, Some(&registry));

    let mut snapshot = registry.snapshot();
    use gp_codec::Encode;
    snapshot
        .attrs
        .insert("bench".into(), gp_codec::Value::Str("train".into()));
    snapshot.attrs.insert("batch_size".into(), BATCH.encode());
    snapshot
        .attrs
        .insert("epochs".into(), config.epochs.encode());
    snapshot
        .attrs
        .insert("train_set".into(), pairs.len().encode());
    snapshot.attrs.insert(
        "step_speedup".into(),
        gp_codec::Value::Str(format!("{speedup:.2}")),
    );
    print!("{}", snapshot.render_table("train.stage."));
    let path = std::path::Path::new("results").join("BENCH_train.json");
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&path, gp_bench::telemetry_artifact(&snapshot)))
    {
        Ok(()) => println!("telemetry artifact: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_train);

fn main() {
    benches();
}
