//! Identity-store persistence benchmarks: gallery encode/decode through
//! both artifact formats, plus a committed size comparison.
//!
//! The criterion benchmarks time the hot persistence operations (what a
//! `gp_store::ArtifactRegistry::publish` pays per gallery checkpoint);
//! `size_report` then serialises deterministic galleries at several
//! population sizes through both envelope formats, proves the binary
//! round-trip is *bit-identical* to the JSON one, and writes the size
//! table as the committed `results/BENCH_store.json` artifact. The
//! report's inputs are fixed (seeded values, no timers), so the
//! committed file only changes when the schema or the codecs do.

use criterion::{criterion_group, Criterion};
use gestureprint_core::artifact::{kinds, Artifact, ArtifactFormat};
use gp_codec::{Decode, Encode, Value};
use gp_store::EmbeddingGallery;

/// Embedding dimension for every benchmark gallery — the GesIDNet
/// fusion feature width used across the serve benches.
const DIM: usize = 128;
/// Enrollments per user; >1 so persisted sums exercise real
/// accumulation, not single-sample templates.
const SAMPLES_PER_USER: usize = 4;

/// A deterministic gallery of `users` users: embeddings come from a
/// fixed-seed LCG, so every run on every machine builds the same bytes.
fn gallery(users: usize) -> EmbeddingGallery {
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let mut g = EmbeddingGallery::new();
    for u in 0..users {
        let user = format!("user-{u:03}");
        for _ in 0..SAMPLES_PER_USER {
            let embedding: Vec<f32> = (0..DIM).map(|_| next()).collect();
            g.enroll(&user, &embedding).expect("enroll");
        }
    }
    g.set_threshold(1.5);
    g
}

fn bench_store(c: &mut Criterion) {
    let g = gallery(16);
    let payload = g.encode();
    let json = Artifact::new(kinds::GALLERY, payload.clone()).to_bytes();
    let binary = Artifact::new(kinds::GALLERY, payload).into_bytes_with(ArtifactFormat::Binary);

    let mut group = c.benchmark_group("store");
    group.bench_function("gallery_encode_json_16users", |b| {
        b.iter(|| Artifact::new(kinds::GALLERY, g.encode()).to_bytes())
    });
    group.bench_function("gallery_encode_binary_16users", |b| {
        b.iter(|| Artifact::new(kinds::GALLERY, g.encode()).into_bytes_with(ArtifactFormat::Binary))
    });
    group.bench_function("gallery_decode_json_16users", |b| {
        b.iter(|| {
            let artifact = Artifact::from_bytes(&json).expect("envelope");
            EmbeddingGallery::decode(&artifact.payload).expect("gallery")
        })
    });
    group.bench_function("gallery_decode_binary_16users", |b| {
        b.iter(|| {
            let artifact = Artifact::from_bytes(&binary).expect("envelope");
            EmbeddingGallery::decode(&artifact.payload).expect("gallery")
        })
    });
    group.finish();
}

/// Serialises deterministic galleries through both formats, verifies
/// the binary path decodes bit-identically to the JSON path, and
/// commits the size table as `results/BENCH_store.json`.
fn size_report() {
    let mut rows = Vec::new();
    println!("gallery artifact size, JSON vs binary envelope (dim {DIM}):");
    for users in [2usize, 8, 32, 128] {
        let g = gallery(users);
        let payload = g.encode();
        let json = Artifact::new(kinds::GALLERY, payload.clone()).to_bytes();
        let binary =
            Artifact::new(kinds::GALLERY, payload.clone()).into_bytes_with(ArtifactFormat::Binary);

        // Bit-identical: both envelopes reconstruct the exact payload
        // tree and the exact gallery (f64 sums included), and the
        // binary encoder is canonical — re-encoding reproduces bytes.
        let from_json = Artifact::from_bytes(&json).expect("json envelope");
        let from_binary = Artifact::from_bytes(&binary).expect("binary envelope");
        assert_eq!(from_json.payload, payload, "JSON round-trip drifted");
        assert_eq!(from_binary.payload, payload, "binary round-trip drifted");
        assert_eq!(
            EmbeddingGallery::decode(&from_binary.payload).expect("gallery decodes"),
            g,
            "binary decode must be bit-identical to the source gallery"
        );
        assert_eq!(
            from_binary.into_bytes_with(ArtifactFormat::Binary),
            binary,
            "binary envelope encoding must be canonical"
        );

        let ratio = binary.len() as f64 / json.len() as f64;
        println!(
            "  {users:>4} users ({:>4} samples): json {:>8} B | binary {:>8} B | {:.2}×",
            g.samples(),
            json.len(),
            binary.len(),
            ratio,
        );
        rows.push(Value::record([
            ("users", users.encode()),
            ("samples", g.samples().encode()),
            ("dim", DIM.encode()),
            ("json_bytes", json.len().encode()),
            ("binary_bytes", binary.len().encode()),
        ]));
    }

    let payload = Value::record([
        ("bench", Value::Str("store_gallery_size".into())),
        ("samples_per_user", SAMPLES_PER_USER.encode()),
        ("sizes", Value::Seq(rows)),
    ]);
    let path = std::path::Path::new("results").join("BENCH_store.json");
    let bytes = Artifact::new(kinds::REPORT, payload).to_bytes();
    match std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, &bytes)) {
        Ok(()) => println!("size artifact: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_store);

fn main() {
    benches();
    size_report();
}
