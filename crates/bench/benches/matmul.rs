//! Blocked GEMM kernels vs the retained naive oracles.
//!
//! The kernel layer (`gp_nn::kernels`) replaced the naive triple loops
//! behind every `Matrix` product; this bench makes the claimed FLOP
//! uplift measurable at GesIDNet-representative shapes and keeps the
//! comparison honest: results are parity-gated against the oracle
//! before anything is timed, and the headline speedups are asserted so
//! a regression to naive-level throughput fails the bench instead of
//! silently shifting the baseline.
//!
//! Also exports `results/BENCH_matmul.json` — a telemetry snapshot with
//! one per-iteration latency histogram per (kernel, shape) — through
//! the same artifact envelope as the serving benches.

use criterion::{criterion_group, Criterion};
use gp_nn::kernels;
use gp_nn::Matrix;
use std::hint::black_box;
use std::time::Instant;

/// GesIDNet-representative product shapes `(m, k, n, tag)`:
///
/// * `256×64 · 64×128` — stacked SA1 group rows through a shared-MLP
///   layer at batch 8 (the ISSUE's reference shape).
/// * `192×96 · 96×192` — low/high projection over stacked centroid rows.
/// * `24×35 · 35×24` — one sample's SA1 groups, the small-path regime.
const SHAPES: [(usize, usize, usize, &str); 3] = [
    (256, 64, 128, "256x64.64x128"),
    (192, 96, 192, "192x96.96x192"),
    (24, 35, 24, "24x35.35x24"),
];

fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn assert_close(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(
            (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
            "{what}: {x} vs {y}"
        );
    }
}

/// Per-call seconds over `iters` timed runs (after warmup), sorted.
fn time_runs(iters: usize, mut f: impl FnMut() -> Matrix) -> Vec<f64> {
    for _ in 0..3 {
        black_box(f());
    }
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times
}

fn bench_matmul(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 5 } else { 40 };
    let backend = kernels::active_backend();
    let simd_active = backend != kernels::Backend::Scalar;

    let registry = gp_telemetry::Registry::new();
    registry.set_attr("backend", gp_codec::Value::Str(format!("{backend:?}")));
    let mut group = c.benchmark_group("matmul");
    let mut report: Vec<String> = Vec::new();

    for (m, k, n, tag) in SHAPES {
        let a = filled(m, k, 1);
        let b = filled(k, n, 2);
        let bt = filled(n, k, 3);
        let a_tall = filled(k, m, 4);

        // Parity gate: timing a kernel that diverges from the oracle
        // would be meaningless.
        assert_close(&a.matmul(&b), &kernels::naive_matmul(&a, &b), tag);
        assert_close(
            &a.matmul_transpose(&bt),
            &kernels::naive_matmul_transpose(&a, &bt),
            tag,
        );
        assert_close(
            &a_tall.transpose_matmul(&b),
            &kernels::naive_transpose_matmul(&a_tall, &b),
            tag,
        );

        // Criterion benches (these feed the CI regression gate).
        group.bench_function(format!("blocked_{tag}"), |bch| bch.iter(|| a.matmul(&b)));
        group.bench_function(format!("naive_{tag}"), |bch| {
            bch.iter(|| kernels::naive_matmul(&a, &b))
        });
        group.bench_function(format!("blocked_transpose_{tag}"), |bch| {
            bch.iter(|| a.matmul_transpose(&bt))
        });

        // Manual timings for the speedup report + telemetry export. The
        // ratio uses the *minimum* per-call time: for a CPU-bound kernel
        // the min is the run least disturbed by scheduler/frequency
        // noise (this box shows ±20% sample spread), while medians of
        // interleaved runs wander enough to flake a 2x gate.
        let variants: [(&str, Box<dyn FnMut() -> Matrix>); 6] = [
            ("blocked", Box::new(|| a.matmul(&b))),
            ("naive", Box::new(|| kernels::naive_matmul(&a, &b))),
            ("blocked_nt", Box::new(|| a.matmul_transpose(&bt))),
            (
                "naive_nt",
                Box::new(|| kernels::naive_matmul_transpose(&a, &bt)),
            ),
            ("blocked_tn", Box::new(|| a_tall.transpose_matmul(&b))),
            (
                "naive_tn",
                Box::new(|| kernels::naive_transpose_matmul(&a_tall, &b)),
            ),
        ];
        let mut mins = std::collections::BTreeMap::new();
        for (name, mut f) in variants {
            let times = time_runs(iters, &mut f);
            let hist = registry.histogram(&format!("matmul.{name}.{tag}"));
            for t in &times {
                hist.record((t * 1e6) as u64);
            }
            mins.insert(name, times[0]);
        }
        let s = mins["naive"] / mins["blocked"];
        let s_nt = mins["naive_nt"] / mins["blocked_nt"];
        let s_tn = mins["naive_tn"] / mins["blocked_tn"];
        report.push(format!(
            "{tag}: matmul {s:.2}x, matmul_transpose {s_nt:.2}x, transpose_matmul {s_tn:.2}x \
             (blocked {:.1}us vs naive {:.1}us)",
            mins["blocked"] * 1e6,
            mins["naive"] * 1e6,
        ));
        registry.set_attr(
            &format!("speedup.{tag}"),
            gp_codec::Value::Str(format!("{s:.2}/{s_nt:.2}/{s_tn:.2}")),
        );

        // The acceptance floor, asserted only at the large stacked
        // shapes where the kernel's cache behaviour dominates — the
        // small per-sample shape runs the low-overhead fast path and is
        // reported, not gated. The ≥2× matmul floor needs a SIMD
        // micro-kernel: the naive ikj loop autovectorizes to near the
        // SSE2 mul+add peak, which no scalar-codegen kernel can double.
        // With the default std-only build the blocked engine must merely
        // not lose to naive (0.9 leaves room for timer noise);
        // matmul_transpose's naive row-dot reduction does not vectorize,
        // so its 2× floor holds on every backend. Smoke mode (`--test`)
        // skips the assertions: 5 iterations on a shared CI box is not a
        // measurement.
        if !smoke && m * n >= 128 * 128 {
            let floor = if simd_active { 2.0 } else { 0.9 };
            assert!(
                s >= floor,
                "blocked matmul must be >={floor}x naive at {tag} ({backend:?}): got {s:.2}x"
            );
            assert!(
                s_nt >= 2.0,
                "blocked matmul_transpose must be >=2x naive at {tag}: got {s_nt:.2}x"
            );
        }
    }
    group.finish();

    println!("kernel speedups (min of {iters}):");
    for line in &report {
        println!("  {line}");
    }

    let mut snapshot = registry.snapshot();
    snapshot
        .attrs
        .insert("bench".into(), gp_codec::Value::Str("matmul".into()));
    let path = std::path::Path::new("results").join("BENCH_matmul.json");
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&path, gp_bench::telemetry_artifact(&snapshot)))
    {
        Ok(()) => println!("telemetry artifact: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

criterion_group!(benches, bench_matmul);

fn main() {
    benches();
}
