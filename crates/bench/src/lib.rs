//! Shared fixtures for the Criterion benchmarks.
//!
//! `benches/pipeline.rs` covers the signal chain (FFT, CFAR, frame
//! simulation), the preprocessing stage (segmentation, DBSCAN, full
//! preprocess — the paper's §VI-B5 "preprocessing time"), and the
//! classifiers (inference and one training step). `benches/serve.rs`
//! covers the streaming serving path (replay throughput, online
//! segmentation per frame) and prints a multi-session frames/sec +
//! p50/p99 latency report.
//!
//! The fixtures themselves live in `gp-testkit` (shared with the
//! integration tests); this crate only re-exports them so bench code and
//! test code exercise identical inputs.

pub use gp_testkit::{capture_fixture, sample_fixture};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let frames = capture_fixture();
        assert!(frames.len() > 30);
        let sample = sample_fixture();
        assert!(sample.cloud.len() >= 8);
    }
}
