//! Shared fixtures and replay drivers for the Criterion benchmarks and
//! the serving example.
//!
//! `benches/pipeline.rs` covers the signal chain (FFT, CFAR, frame
//! simulation), the preprocessing stage (segmentation, DBSCAN, full
//! preprocess — the paper's §VI-B5 "preprocessing time"), and the
//! classifiers (inference and one training step). `benches/serve.rs`
//! covers the streaming serving path (replay throughput, online
//! segmentation per frame) and prints a paced multi-session frames/sec
//! + p50/p99 latency report. `benches/inference.rs` compares batched
//! against sequential GesIDNet inference.
//!
//! The capture fixtures live in `gp-testkit` (shared with the
//! integration tests); this crate re-exports them and adds the pieces
//! the serving bench and `examples/streaming_serve.rs` share, so the
//! two cannot drift apart:
//!
//! * [`serve_config`] — the single source of serving configuration.
//!   Segmentation/noise-canceling parameters come from
//!   `gp_pipeline::PreprocessorConfig::default()` through one
//!   expression; neither the bench nor the example re-declares them.
//! * [`ReplayPacer`] — fixed-fps replay with deterministic jitter, so
//!   replays measure steady-state latency instead of burst latency.
//! * [`drive_sessions`] — replays one stream per session concurrently
//!   on a `gp_runtime::WorkerPool` (the migrated form of the scoped
//!   driver threads the bench and example used to hand-roll).

use gestureprint_core::artifact::{kinds, Artifact};
use gp_codec::{Decode, Encode, Value};
use gp_runtime::WorkerPool;
use gp_serve::{ServeConfig, ServeEngine, ServeStats, SessionId, TelemetrySnapshot};
use gp_testkit::GestureStream;
use std::time::{Duration, Instant};

pub use gp_testkit::{capture_fixture, sample_fixture};

/// The single source of serving configuration for the serve bench and
/// the streaming example: `workers`/`max_batch` vary per scenario,
/// everything else — in particular the preprocessor, and with it every
/// segmentation parameter — is the `gp-pipeline` default.
pub fn serve_config(workers: usize, max_batch: usize) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch,
        ..ServeConfig::default()
    }
}

/// Builds a `gestureprint.report` artifact capturing one paced serve
/// replay: the exact [`ServeConfig`] served, the workload shape, and
/// the operational numbers (frames/sec, latency percentiles) — so
/// steady-state serving results are machine-comparable across runs,
/// not just printed.
pub fn serve_report_artifact(
    config: &ServeConfig,
    sessions: usize,
    replay_fps: f64,
    stats: &ServeStats,
    results: usize,
    elapsed: Duration,
) -> Vec<u8> {
    let frames = stats.total_frames();
    let fps = frames as f64 / elapsed.as_secs_f64().max(1e-9);
    let latency_s = |p: f64| {
        stats
            .latency_percentile(p)
            .map(|d| d.as_secs_f64())
            .encode()
    };
    let spread = per_session_p99_spread(stats);
    let payload = Value::record([
        ("report", Value::Str("serve_steady_state".into())),
        ("serve_config", config.encode()),
        ("sessions", sessions.encode()),
        ("replay_fps", replay_fps.encode()),
        ("frames", frames.encode()),
        ("segments", stats.total_segments().encode()),
        ("results", results.encode()),
        ("elapsed_s", elapsed.as_secs_f64().encode()),
        ("frames_per_sec", fps.encode()),
        ("latency_p50_s", latency_s(50.0)),
        ("latency_p99_s", latency_s(99.0)),
        (
            "p99_spread_s",
            spread
                .map(|s| {
                    Value::record([
                        ("min", s.min.as_secs_f64().encode()),
                        ("median", s.median.as_secs_f64().encode()),
                        ("max", s.max.as_secs_f64().encode()),
                    ])
                })
                .encode(),
        ),
    ]);
    Artifact::new(kinds::REPORT, payload).to_bytes()
}

/// Wraps a telemetry snapshot in the versioned artifact envelope
/// (`gestureprint.telemetry`) — the `BENCH_*.json` trajectory format
/// the benches commit and the soak job uploads. The snapshot schema is
/// versioned independently of the envelope, so either layer can evolve
/// without breaking old readers.
pub fn telemetry_artifact(snapshot: &TelemetrySnapshot) -> Vec<u8> {
    Artifact::new(kinds::TELEMETRY, snapshot.encode()).to_bytes()
}

/// Decodes a `BENCH_*.json` artifact back into its snapshot — the
/// compat direction CI checks against the committed artifacts.
///
/// # Errors
///
/// Returns the envelope error (wrong kind, future schema, malformed
/// bytes) or the snapshot's own decode error as a string.
pub fn telemetry_from_artifact(bytes: &[u8]) -> Result<TelemetrySnapshot, String> {
    let artifact = Artifact::from_bytes(bytes).map_err(|e| e.to_string())?;
    artifact
        .expect_kind(kinds::TELEMETRY)
        .map_err(|e| e.to_string())?;
    TelemetrySnapshot::decode(&artifact.payload).map_err(|e| e.to_string())
}

/// Cross-session latency spread: min / median / max of the *per-session*
/// p99s. A tight spread means no tenant is quietly absorbing the tail
/// for the others — the fairness number the multi-session reports print
/// next to the pooled percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P99Spread {
    /// Best per-session p99.
    pub min: Duration,
    /// Median per-session p99.
    pub median: Duration,
    /// Worst per-session p99.
    pub max: Duration,
}

/// Computes the [`P99Spread`] over every session (evicted aggregate
/// excluded — it pools many sessions) that has latency samples.
pub fn per_session_p99_spread(stats: &ServeStats) -> Option<P99Spread> {
    let mut p99s: Vec<Duration> = stats
        .sessions
        .values()
        .filter_map(|s| s.latency_percentile(99.0))
        .collect();
    if p99s.is_empty() {
        return None;
    }
    p99s.sort_unstable();
    Some(P99Spread {
        min: p99s[0],
        median: p99s[p99s.len() / 2],
        max: p99s[p99s.len() - 1],
    })
}

/// Fixed-fps replay pacing with deterministic jitter.
///
/// Frame `i`'s target offset from replay start is `i / fps` plus a
/// per-frame jitter drawn deterministically from `(seed, i)` in
/// `±jitter × frame interval`. The schedule (not the OS sleep accuracy)
/// is reproducible across runs, which keeps paced replays comparable.
#[derive(Debug, Clone, Copy)]
pub struct ReplayPacer {
    interval_secs: f64,
    jitter: f64,
    seed: u64,
}

impl ReplayPacer {
    /// A pacer replaying at `fps` frames per second with `jitter`
    /// (fraction of the frame interval, `0.0..=0.5` is sensible) of
    /// deterministic per-frame wobble.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is not positive.
    pub fn new(fps: f64, jitter: f64, seed: u64) -> ReplayPacer {
        assert!(fps > 0.0, "fps must be positive");
        ReplayPacer {
            interval_secs: 1.0 / fps,
            jitter,
            seed,
        }
    }

    /// Frame `i`'s target offset from replay start.
    pub fn offset_for(&self, frame: usize) -> Duration {
        // SplitMix64 over (seed, frame): cheap, stateless, deterministic.
        let mut z = self
            .seed
            .wrapping_add((frame as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let wobble = (2.0 * unit - 1.0) * self.jitter;
        let t = (frame as f64 + wobble).max(0.0) * self.interval_secs;
        Duration::from_secs_f64(t)
    }

    /// Sleeps until frame `i`'s target time relative to `start` (no-op
    /// when already past it).
    pub fn pace(&self, start: Instant, frame: usize) {
        let target = start + self.offset_for(frame);
        if let Some(wait) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
    }
}

/// Replays one stream per session concurrently — one pool worker per
/// session — and closes each session at stream end. `pacer: None`
/// replays as fast as possible (burst mode); `Some` paces every
/// driver's frames on its own clock (steady-state mode).
pub fn drive_sessions(
    engine: &ServeEngine,
    sessions: &[(SessionId, &GestureStream)],
    pacer: Option<ReplayPacer>,
) {
    if sessions.is_empty() {
        return;
    }
    let drivers = WorkerPool::new(sessions.len());
    drivers.scope_map(sessions.to_vec(), |_, (session, stream)| {
        let start = Instant::now();
        for (i, frame) in stream.frames.iter().enumerate() {
            if let Some(pacer) = &pacer {
                pacer.pace(start, i);
            }
            engine.push_frame(session, frame.clone());
        }
        engine.close_session(session);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let frames = capture_fixture();
        assert!(frames.len() > 30);
        let sample = sample_fixture();
        assert!(sample.cloud.len() >= 8);
    }

    #[test]
    fn serve_config_uses_pipeline_preprocessor_defaults() {
        let config = serve_config(2, 4);
        assert_eq!(config.workers, 2);
        assert_eq!(config.max_batch, 4);
        assert_eq!(
            config.preprocessor,
            gp_pipeline::PreprocessorConfig::default(),
            "serving preprocessor must be the gp-pipeline default"
        );
    }

    #[test]
    fn pacer_is_deterministic_and_roughly_fixed_rate() {
        let pacer = ReplayPacer::new(10.0, 0.2, 7);
        let again = ReplayPacer::new(10.0, 0.2, 7);
        for i in 0..50 {
            assert_eq!(pacer.offset_for(i), again.offset_for(i), "frame {i}");
            let nominal = i as f64 * 0.1;
            let offset = pacer.offset_for(i).as_secs_f64();
            assert!(
                (offset - nominal).abs() <= 0.2 * 0.1 + 1e-9,
                "frame {i}: offset {offset} strays from nominal {nominal}"
            );
        }
        // A different seed produces a different jitter sequence.
        let other = ReplayPacer::new(10.0, 0.2, 8);
        assert!((0..50).any(|i| other.offset_for(i) != pacer.offset_for(i)));
    }

    #[test]
    fn zero_jitter_is_exactly_fixed_rate() {
        let pacer = ReplayPacer::new(100.0, 0.0, 0);
        assert_eq!(pacer.offset_for(0), Duration::ZERO);
        assert_eq!(pacer.offset_for(10), Duration::from_millis(100));
    }

    #[test]
    fn telemetry_artifact_roundtrips_through_envelope() {
        let engine = ServeEngine::new(gp_testkit::toy_system(), serve_config(1, 2));
        let stream = gp_testkit::stream_fixture();
        let session = engine.open_session();
        for frame in &stream.frames {
            engine.push_frame(session, frame.clone());
        }
        engine.close_session(session);
        engine.drain();
        let snap = engine.telemetry_snapshot().expect("telemetry defaults on");
        let bytes = telemetry_artifact(&snap);
        let back = telemetry_from_artifact(&bytes).expect("decodable artifact");
        assert_eq!(back, snap);
        // Wrong-kind bytes fail typed, not garbled.
        let wrong = Artifact::new(kinds::REPORT, snap.encode()).to_bytes();
        assert!(telemetry_from_artifact(&wrong).is_err());
    }

    #[test]
    fn drive_sessions_replays_and_closes() {
        let engine = ServeEngine::new(gp_testkit::toy_system(), serve_config(2, 2));
        let stream = gp_testkit::stream_fixture();
        let sessions: Vec<(SessionId, &GestureStream)> =
            (0..2).map(|_| (engine.open_session(), &stream)).collect();
        drive_sessions(&engine, &sessions, Some(ReplayPacer::new(5_000.0, 0.1, 3)));
        assert_eq!(engine.session_count(), 0, "sessions closed");
        let events = engine.drain();
        assert!(!events.is_empty(), "paced replay still publishes results");
    }
}
