//! Shared fixtures for the Criterion benchmarks.
//!
//! Benches live in `benches/pipeline.rs` and cover the signal chain
//! (FFT, CFAR, frame simulation), the preprocessing stage (segmentation,
//! DBSCAN, full preprocess — the paper's §VI-B5 "preprocessing time"),
//! and the classifiers (inference and one training step).

use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{LabeledSample, Preprocessor, PreprocessorConfig};
use gp_radar::{Backend, Environment, Frame, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A canonical captured gesture: user 0, ASL 'push', 1.2 m, office.
pub fn capture_fixture() -> Vec<Frame> {
    let profile = UserProfile::generate(0, 42);
    let mut rng = StdRng::seed_from_u64(5);
    let perf = Performance::new(&profile, GestureSet::Asl15, GestureId(12), 1.2, &mut rng);
    let scene = Scene::for_performance(perf, Environment::Office, 5);
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 5);
    sim.capture_scene(&scene)
}

/// A preprocessed, labeled sample derived from [`capture_fixture`].
///
/// # Panics
///
/// Panics if the canonical capture yields no segment (would indicate a
/// pipeline regression).
pub fn sample_fixture() -> LabeledSample {
    let frames = capture_fixture();
    let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
    let best = samples
        .into_iter()
        .max_by_key(|s| s.duration_frames)
        .expect("canonical capture must segment");
    LabeledSample::from_sample(best, 12, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let frames = capture_fixture();
        assert!(frames.len() > 30);
        let sample = sample_fixture();
        assert!(sample.cloud.len() >= 8);
    }
}
