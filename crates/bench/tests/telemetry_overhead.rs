//! Tier-1 overhead smoke: the stage-tracing clocks must be close to
//! free. Replays the capture fixture through identical engines with
//! telemetry on and off, interleaved, and compares the *minimum* round
//! time per mode — min-of-N is the standard noise-robust estimator for
//! "how fast can this go", so scheduler hiccups inflate neither side.

use gp_serve::{ServeConfig, ServeEngine};
use gp_testkit::{stream_fixture, toy_system, GestureStream};
use std::time::{Duration, Instant};

const ROUNDS: usize = 7;
// Long enough rounds that scheduler noise is small relative to the
// measurement — the blocked GEMM kernels made each replay fast enough
// that short rounds flaked under a fully parallel `cargo test`.
const REPLAYS_PER_ROUND: usize = 6;
const MAX_OVERHEAD: f64 = 0.05;

fn engine(telemetry: bool) -> ServeEngine {
    ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            telemetry,
            ..ServeConfig::default()
        },
    )
}

/// One timed round: several burst replays through a prebuilt engine
/// (construction and fixture decode stay outside the clock).
fn round(engine: &ServeEngine, stream: &GestureStream) -> Duration {
    let start = Instant::now();
    for _ in 0..REPLAYS_PER_ROUND {
        let session = engine.open_session();
        for frame in &stream.frames {
            engine.push_frame(session, frame.clone());
        }
        engine.close_session(session);
        engine.drain();
    }
    start.elapsed()
}

#[test]
fn telemetry_overhead_stays_under_five_percent() {
    let stream = stream_fixture();
    let on = engine(true);
    let off = engine(false);

    // Warm both paths (page-in, pool spin-up) before measuring.
    round(&on, &stream);
    round(&off, &stream);

    let mut best_on = Duration::MAX;
    let mut best_off = Duration::MAX;
    // Interleave so slow-drifting machine noise hits both modes alike.
    for _ in 0..ROUNDS {
        best_off = best_off.min(round(&off, &stream));
        best_on = best_on.min(round(&on, &stream));
    }

    let overhead = best_on.as_secs_f64() / best_off.as_secs_f64() - 1.0;
    println!(
        "telemetry overhead: on {best_on:.2?} vs off {best_off:.2?} ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "telemetry-on replay is {:.2}% slower than telemetry-off \
         (bound: <{:.0}%): {best_on:?} vs {best_off:?}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    // The cheap mode really is the instrumented one being compared:
    // stage clocks recorded on one side, absent on the other.
    assert!(on.telemetry_snapshot().is_some());
    assert!(off.telemetry_snapshot().is_none());
}
