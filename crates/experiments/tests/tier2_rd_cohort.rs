//! Tier-2 tests for the range-Doppler sensing path, `#[ignore]`d by
//! default.
//!
//! Tier-1 keeps RD coverage to a 2×2 cohort; these tests scale it up to
//! a paper-shaped cohort (more gestures, more users, more repetitions)
//! and take minutes. Run them explicitly:
//!
//! ```text
//! cargo test -p gp-experiments --test tier2_rd_cohort -- --ignored
//! ```
//!
//! See TESTING.md for the tier policy.

use gestureprint_core::{
    GesturePrint, GesturePrintConfig, IdentificationMode, ModelKind, TrainConfig,
};
use gp_rd::RdLabeledSample;
use gp_serve::{SensingBackend, ServeConfig, ServeEngine};
use gp_testkit::{rd_capture, rd_sample, toy_system};

/// A mid-size cohort: four mTransSee gestures with distinct Doppler
/// signatures ('push', 'wave', 'pull', 'circle'), remapped to classes
/// 0..4.
const GESTURES: [usize; 4] = [12, 3, 13, 5];
const USERS: usize = 4;
const TRAIN_REPS: u64 = 6;
const TEST_REPS: [u64; 2] = [40, 41];

fn cohort_samples(reps: impl Iterator<Item = u64> + Clone) -> Vec<RdLabeledSample> {
    let mut samples = Vec::new();
    for (class, &gesture) in GESTURES.iter().enumerate() {
        for user in 0..USERS {
            for rep in reps.clone() {
                let mut sample = rd_sample(user, gesture, rep);
                sample.gesture = class;
                samples.push(sample);
            }
        }
    }
    samples
}

fn train_cohort(epochs: usize) -> GesturePrint {
    let train = cohort_samples(0..TRAIN_REPS);
    let refs: Vec<&RdLabeledSample> = train.iter().collect();
    GesturePrint::train_rd(
        &refs,
        GESTURES.len(),
        USERS,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig {
                model: ModelKind::RdNet,
                epochs,
                learning_rate: 5e-3,
                augment: None,
                ..TrainConfig::default()
            },
            threads: 0,
        },
    )
}

#[test]
#[ignore = "tier-2: trains RdNet on a 4-gesture × 4-user RD cohort (~minutes)"]
fn rd_cohort_learns_both_tasks_above_floor() {
    let system = train_cohort(20);
    let test = cohort_samples(TEST_REPS.into_iter());
    let refs: Vec<&RdLabeledSample> = test.iter().collect();
    let inferences = system.infer_rd_batch(&refs);
    let total = test.len();
    let mut gesture_correct = 0usize;
    let mut user_correct = 0usize;
    for (sample, inference) in test.iter().zip(&inferences) {
        gesture_correct += usize::from(inference.gesture == sample.gesture);
        user_correct += usize::from(inference.user == sample.user);
    }
    assert_eq!(total, GESTURES.len() * USERS * TEST_REPS.len());
    // Chance is 1/4 on both tasks. The floors are deliberately
    // conservative (regression catch, not tuning drift): both tasks
    // must clear 2× chance on held-out repetitions.
    let gesture_acc = gesture_correct as f64 / total as f64;
    let user_acc = user_correct as f64 / total as f64;
    assert!(
        gesture_acc > 0.5,
        "RD gesture accuracy {gesture_acc:.3} ({gesture_correct}/{total}) below 2× chance"
    );
    assert!(
        user_acc > 0.5,
        "RD identification accuracy {user_acc:.3} ({user_correct}/{total}) below 2× chance"
    );
}

#[test]
#[ignore = "tier-2: streams a full RD cohort through the serving engine (~minutes)"]
fn rd_cohort_serves_above_floor_through_engine_sessions() {
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 0,
            max_batch: 8,
            ..ServeConfig::default()
        },
    )
    .with_rd_system(train_cohort(20));
    let mut total = 0usize;
    let mut gesture_correct = 0usize;
    let mut user_correct = 0usize;
    for (class, &gesture) in GESTURES.iter().enumerate() {
        for user in 0..USERS {
            for rep in TEST_REPS {
                let (_, frames) = rd_capture(user, gesture, rep);
                let session = engine.open_rd_session();
                for frame in &frames {
                    engine.push_rd_frame(session, frame.clone());
                }
                engine.close_session(session);
                let events = engine.drain();
                let event = events
                    .iter()
                    .filter(|e| e.session == session)
                    .max_by_key(|e| e.segment.len())
                    .expect("every capture must segment and publish");
                assert_eq!(event.backend, SensingBackend::RangeDoppler);
                total += 1;
                gesture_correct += usize::from(event.inference.gesture == class);
                user_correct += usize::from(event.inference.user == user);
            }
        }
    }
    assert_eq!(total, GESTURES.len() * USERS * TEST_REPS.len());
    assert!(
        gesture_correct * 2 > total,
        "served RD gesture accuracy {gesture_correct}/{total} below 2× chance"
    );
    assert!(
        user_correct * 2 > total,
        "served RD identification accuracy {user_correct}/{total} below 2× chance"
    );
    // The engine's RD telemetry accounted for every capture.
    let registry = engine.registry().expect("telemetry on by default");
    assert_eq!(registry.counter("serve.rd.fallback").get(), 0);
    assert!(registry.counter("serve.rd.segments").get() >= total as u64);
}
