//! Tier-2 tests: full-scale experiment runs, `#[ignore]`d by default.
//!
//! Tier-1 (`cargo test`) must stay fast; these tests instead reproduce
//! the *shape* of the paper's headline numbers on the `Scale::Small`
//! cohorts the experiment binaries use, which takes minutes. Run them
//! explicitly:
//!
//! ```text
//! cargo test -p gp-experiments --test tier2_full_scale -- --ignored
//! ```
//!
//! See TESTING.md for the tier policy.

use gp_datasets::{presets, Scale};
use gp_experiments::{build_dataset, default_train, evaluate_scenario, split80};
use gp_pipeline::LabeledSample;

/// Builds a small-scale preset, splits 80/20 and evaluates both tasks.
fn run_small(spec: gp_datasets::DatasetSpec) -> (gp_experiments::ScenarioResult, usize) {
    let gestures = spec.set.gesture_count();
    let users = spec.users;
    let ds = build_dataset(&spec);
    let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
    let (train, test) = split80(&samples, 17);
    let result = evaluate_scenario(&train, &test, gestures, users, &default_train());
    (result, test.len())
}

#[test]
#[ignore = "tier-2: trains the full system on a Scale::Small cohort (~minutes)"]
fn small_scale_mtranssee_beats_paper_floors() {
    let (r, n_test) = run_small(presets::mtranssee(Scale::Small, &[1.2]));
    assert!(n_test > 20, "test split too small: {n_test}");
    // The paper reports 98.87% GRA / 99.78% UIA at full scale (§VI-A);
    // at Scale::Small with short training these floors are deliberately
    // conservative — they catch regressions, not tuning drift.
    assert!(
        r.gr.accuracy > 0.75,
        "gesture recognition accuracy {}",
        r.gr.accuracy
    );
    assert!(
        r.ui_parallel.accuracy > 0.60,
        "parallel-mode identification accuracy {}",
        r.ui_parallel.accuracy
    );
    assert!(
        r.ui_serialized_accuracy > 0.50,
        "serialized-mode identification accuracy {}",
        r.ui_serialized_accuracy
    );
    assert!(
        r.ui_parallel.eer < 0.30,
        "identification EER {}",
        r.ui_parallel.eer
    );
}

#[test]
#[ignore = "tier-2: trains the full system on a Scale::Small cohort (~minutes)"]
fn small_scale_gestureprint_set_learns_both_tasks() {
    let (r, n_test) = run_small(presets::gestureprint(
        gp_radar::Environment::Office,
        Scale::Small,
    ));
    assert!(n_test > 20, "test split too small: {n_test}");
    let gesture_chance = 1.0 / 15.0;
    let user_chance = 1.0 / 5.0;
    assert!(
        r.gr.accuracy > 3.0 * gesture_chance,
        "gesture recognition accuracy {} barely beats chance",
        r.gr.accuracy
    );
    assert!(
        r.ui_parallel.accuracy > 2.0 * user_chance,
        "identification accuracy {} barely beats chance",
        r.ui_parallel.accuracy
    );
}
