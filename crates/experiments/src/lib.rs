//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index). They accept `--scale paper`
//! to run at published cohort sizes; the default `small` scale finishes
//! on a laptop-class CPU and preserves the result *shapes*.

use gestureprint_core::{
    classification_report, train_classifier, ClassificationReport, GesturePrint,
    GesturePrintConfig, IdentificationMode, TrainConfig,
};
use gp_datasets::{build, BuildOptions, Dataset, DatasetSpec, Scale};
use gp_pipeline::LabeledSample;
use std::io::Write;

/// Parses `--scale small|paper` from the command line (default small).
pub fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            match args.get(i + 1).map(String::as_str) {
                Some("paper") => return Scale::Paper,
                Some("small") | None => return Scale::Small,
                Some(other) => {
                    eprintln!("unknown scale '{other}', using small");
                    return Scale::Small;
                }
            }
        }
    }
    Scale::Small
}

/// Human-readable scale tag for report headers.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Paper => "paper",
        Scale::Small => "small",
        Scale::Custom { .. } => "custom",
    }
}

/// The experiments' default training configuration: paper preprocessing,
/// budget-conscious epochs.
pub fn default_train() -> TrainConfig {
    TrainConfig {
        epochs: 14,
        ..TrainConfig::default()
    }
}

/// Builds a dataset with default options.
pub fn build_dataset(spec: &DatasetSpec) -> Dataset {
    build(spec, &BuildOptions::default())
}

/// An 80/20 split of sample references.
pub fn split80<'a>(
    samples: &[&'a LabeledSample],
    seed: u64,
) -> (Vec<&'a LabeledSample>, Vec<&'a LabeledSample>) {
    let (tr, te) = gp_eval::split::train_test_split(samples.len(), 0.2, seed);
    (
        tr.iter().map(|&i| samples[i]).collect(),
        te.iter().map(|&i| samples[i]).collect(),
    )
}

/// Results of evaluating both tasks on one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Gesture recognition report.
    pub gr: ClassificationReport,
    /// User identification report for the *parallel* mode identifier.
    pub ui_parallel: ClassificationReport,
    /// Serialized-mode UIA (average per-gesture accuracy, paper §VI-A3).
    pub ui_serialized_accuracy: f64,
    /// Serialized-mode macro F1 across users.
    pub ui_serialized_f1: f64,
    /// Serialized-mode macro AUC.
    pub ui_serialized_auc: f64,
}

/// Trains and evaluates the full GesturePrint system (GR + both UI
/// modes) on one dataset scenario.
pub fn evaluate_scenario(
    train: &[&LabeledSample],
    test: &[&LabeledSample],
    gestures: usize,
    users: usize,
    train_cfg: &TrainConfig,
) -> ScenarioResult {
    // Gesture model + serialized identifiers in one system.
    let system = GesturePrint::train(
        train,
        gestures,
        users,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: train_cfg.clone(),
            threads: 0,
        },
    );
    let gr_pairs: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.gesture)).collect();
    let gr = classification_report(system.gesture_model(), &gr_pairs);

    // Serialized UIA: run full inference, group accuracy by true gesture,
    // then average over gestures (paper definition).
    let mut per_gesture_hits: Vec<(usize, usize)> = vec![(0, 0); gestures];
    let mut ser_preds = Vec::with_capacity(test.len());
    let mut ser_labels = Vec::with_capacity(test.len());
    let mut ser_probs = Vec::with_capacity(test.len());
    for s in test {
        let out = system.infer(s);
        let cell = &mut per_gesture_hits[s.gesture];
        cell.1 += 1;
        if out.user == s.user {
            cell.0 += 1;
        }
        ser_preds.push(out.user);
        ser_labels.push(s.user);
        ser_probs.push(out.user_probs.clone());
    }
    let mut acc_sum = 0.0;
    let mut gcount = 0;
    for (hits, total) in per_gesture_hits {
        if total > 0 {
            acc_sum += hits as f64 / total as f64;
            gcount += 1;
        }
    }
    let ui_serialized_accuracy = if gcount > 0 {
        acc_sum / gcount as f64
    } else {
        0.0
    };
    let ui_serialized_f1 = gp_eval::metrics::macro_f1(&ser_preds, &ser_labels, users);
    let ui_serialized_auc = gp_eval::metrics::macro_auc(&ser_probs, &ser_labels, users);

    // Parallel-mode identifier.
    let ui_pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
    let ui_model = train_classifier(&ui_pairs, users, train_cfg);
    let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
    let ui_parallel = classification_report(&ui_model, &ui_test);

    ScenarioResult {
        gr,
        ui_parallel,
        ui_serialized_accuracy,
        ui_serialized_f1,
        ui_serialized_auc,
    }
}

/// Writes a CSV file under `results/`, creating the directory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(path)
}

/// Writes a figure/table result as a `gestureprint.report` artifact
/// under `results/`, alongside the CSV the binary also emits — the CSV
/// stays for plotting, the artifact makes runs machine-comparable
/// (typed payload, schema version, producing revision).
pub fn write_report_artifact(
    name: &str,
    payload: gp_codec::Value,
) -> std::io::Result<std::path::PathBuf> {
    use gestureprint_core::artifact::{kinds, Artifact};
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, Artifact::new(kinds::REPORT, payload).to_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_names() {
        assert_eq!(scale_name(Scale::Paper), "paper");
        assert_eq!(scale_name(Scale::Small), "small");
    }

    #[test]
    fn csv_writes() {
        let p = write_csv("test_tmp.csv", "a,b", &["1,2".into()]).unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert!(content.contains("a,b"));
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn report_artifact_writes_and_reloads() {
        use gestureprint_core::artifact::{kinds, Artifact};
        use gp_codec::{Encode, Value};
        let payload = Value::record([
            ("figure", "test".encode()),
            ("rows", vec![1i64, 2].encode()),
        ]);
        let p = write_report_artifact("test_tmp_report.json", payload.clone()).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        let artifact = Artifact::from_bytes(&bytes).unwrap();
        assert!(artifact.expect_kind(kinds::REPORT).is_ok());
        assert_eq!(artifact.payload, payload);
        std::fs::remove_file(p).unwrap();
    }
}
