//! Extra ablation (DESIGN.md §4): adaptive vs fixed segmentation
//! threshold.
//!
//! The paper motivates the parameter-adaptive sliding window but does not
//! ablate it; we compare segmentation success rates in a quiet room vs a
//! cluttered one under both threshold policies.

use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{Segmenter, SegmenterConfig};
use gp_pointcloud::Vec3;
use gp_radar::environment::SwayingReflector;
use gp_radar::scene::SceneEntity;
use gp_radar::{Backend, Environment, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== Extra ablation: adaptive vs fixed segmentation threshold ==");
    let adaptive = Segmenter::new(SegmenterConfig::default());
    // Fixed policy: same machinery, but the threshold cannot adapt
    // upward (quantiles collapse onto the floor).
    let fixed = Segmenter::new(SegmenterConfig {
        quantiles: (0.0, 0.0),
        spread_fraction: 0.0,
        min_threshold: 3,
        ..SegmenterConfig::default()
    });

    println!(
        "{:<14} {:>12} {:>12} {:>14}",
        "environment", "adaptive ok", "fixed ok", "fixed spurious"
    );
    for (env, heavy_clutter) in [
        (Environment::OpenSpace, false),
        (Environment::Office, false),
        (Environment::Office, true),
    ] {
        let mut ok_adaptive = 0;
        let mut ok_fixed = 0;
        let mut spurious_fixed = 0;
        let trials = 40;
        for t in 0..trials {
            let user = UserProfile::generate(t % 5, 42);
            let seed = 5_000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let perf = Performance::new(&user, GestureSet::Asl15, GestureId(t % 15), 1.2, &mut rng);
            let (true_start, true_end) = perf.gesture_interval();
            let mut scene = Scene::for_performance(perf, env, seed);
            if heavy_clutter {
                // A fan-blown curtain wall: strong, fast-swaying
                // reflectors that keep the idle baseline at several
                // points per frame.
                for k in 0..10 {
                    scene.push(SceneEntity::Reflector(SwayingReflector {
                        anchor: Vec3::new(
                            if k % 2 == 0 { -1.0 } else { 1.0 },
                            0.8 + 0.3 * k as f64,
                            0.5 + 0.1 * k as f64,
                        ),
                        amplitude: 0.05,
                        frequency: 1.5 + 0.2 * k as f64,
                        phase: k as f64,
                        rcs: 0.6,
                    }));
                }
            }
            let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, seed);
            let frames = sim.capture_scene(&scene);
            // A segmentation is correct when it yields exactly one
            // segment whose boundaries track the true gesture interval
            // (a threshold that never releases produces one giant
            // segment covering the whole capture — that is a failure).
            let correct = |segs: &[gp_pipeline::GestureSegment]| -> bool {
                segs.len() == 1 && {
                    let s = segs[0].start as f64 / 10.0;
                    let e = segs[0].end as f64 / 10.0;
                    (s - true_start).abs() < 1.0 && (e - true_end).abs() < 1.2
                }
            };
            let sa = adaptive.segment(&frames);
            let sf = fixed.segment(&frames);
            if correct(&sa) {
                ok_adaptive += 1;
            }
            if correct(&sf) {
                ok_fixed += 1;
            }
            if sf.len() > 1 {
                spurious_fixed += sf.len() - 1;
            }
        }
        println!(
            "{:<14} {:>9}/{trials} {:>9}/{trials} {:>14}",
            if heavy_clutter {
                "Office+clutter"
            } else {
                env.name()
            },
            ok_adaptive,
            ok_fixed,
            spurious_fixed
        );
    }
    println!("\nexpectation: the adaptive threshold tracks the room's baseline clutter,");
    println!("keeping single-segment detection high in both quiet and noisy rooms.");

    min_motion_frames_sweep();
}

/// ROADMAP follow-up: the `F_thr` default was retuned 8 → 6 when the
/// vendored RNG changed the draw streams; this sweep records the
/// detection rate and the segmentation-vs-ground-truth margins across
/// `min_motion_frames` ∈ 4..=10 so the retune's safety margin is
/// visible. Captures are simulated once and re-segmented per setting.
fn min_motion_frames_sweep() {
    println!("\n== min_motion_frames sweep (segmentation vs ground truth) ==");
    let trials = 30;
    let captures: Vec<(f64, f64, Vec<gp_radar::Frame>)> = (0..trials)
        .map(|t| {
            let user = UserProfile::generate(t % 5, 42);
            let seed = 9_000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let perf = Performance::new(&user, GestureSet::Asl15, GestureId(t % 15), 1.2, &mut rng);
            let (true_start, true_end) = perf.gesture_interval();
            let scene = Scene::for_performance(perf, Environment::Office, seed);
            let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, seed);
            (true_start, true_end, sim.capture_scene(&scene))
        })
        .collect();

    println!(
        "{:>5} {:>12} {:>16} {:>16} {:>10}",
        "F_thr", "detected", "|start err| (s)", "|end err| (s)", "spurious"
    );
    for min_motion_frames in 4..=10usize {
        let segmenter = Segmenter::new(SegmenterConfig {
            min_motion_frames,
            ..SegmenterConfig::default()
        });
        let mut detected = 0usize;
        let mut spurious = 0usize;
        let mut start_err = 0.0f64;
        let mut end_err = 0.0f64;
        for (true_start, true_end, frames) in &captures {
            let segs = segmenter.segment(frames);
            // Score the longest segment (the builder's selection rule).
            if let Some(best) = segs.iter().max_by_key(|s| s.len()) {
                detected += 1;
                start_err += (best.start as f64 / 10.0 - true_start).abs();
                end_err += (best.end as f64 / 10.0 - true_end).abs();
            }
            spurious += segs.len().saturating_sub(1);
        }
        let n = detected.max(1) as f64;
        println!(
            "{:>5} {:>9}/{trials} {:>16.2} {:>16.2} {:>10}",
            min_motion_frames,
            detected,
            start_err / n,
            end_err / n,
            spurious
        );
    }
    println!("\nexpectation: small F_thr admits spurious fragments, large F_thr misses");
    println!("multi-phase gestures whose longest motion burst is 6-7 frames; the");
    println!("default (6) should sit on the plateau of full detection with sub-second margins.");
}
