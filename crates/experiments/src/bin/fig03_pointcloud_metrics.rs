//! E1 — Fig. 3: HD / CD / JSD between gesture point clouds, same user vs
//! different users.
//!
//! Reproduces the preliminary study (§III): two users with near-identical
//! body shape (height ≈ 1.60 m) perform 'away', 'push' and 'front' ten
//! times each; the paper's Eq. (1) averages pairwise metrics within and
//! across users. Expectation: cross-user > same-user for all metrics and
//! all gestures.

use gp_datasets::BuildOptions;
use gp_experiments::write_csv;
use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::performance::PerformanceConfig;
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{Preprocessor, PreprocessorConfig};
use gp_pointcloud::metrics::{chamfer, hausdorff, jsd, mean_pairwise, JsdConfig};
use gp_pointcloud::PointCloud;
use gp_radar::{Environment, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ASL ids: 'away' = 4, 'push' = 12, 'front' = 11.
const GESTURES: [(usize, &str); 3] = [(4, "away"), (12, "push"), (11, "front")];
const REPS: usize = 10;

fn capture_reps(profile: &UserProfile, gesture: usize, seed0: u64) -> Vec<PointCloud> {
    let opts = BuildOptions::default();
    let pre = Preprocessor::new(PreprocessorConfig::default());
    let mut out = Vec::with_capacity(REPS);
    let mut attempt = 0u64;
    while out.len() < REPS && attempt < REPS as u64 * 4 {
        let seed = seed0 ^ (attempt.wrapping_mul(0x9E37_79B9));
        attempt += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let perf = Performance::with_config(
            profile,
            GestureSet::Asl15,
            GestureId(gesture),
            PerformanceConfig::default(),
            &mut rng,
        );
        let scene = Scene::for_performance(perf, Environment::Office, seed ^ 0xE57);
        let mut sim = RadarSimulator::new(opts.radar.clone(), opts.backend, seed ^ 0x51B);
        let frames = sim.capture_scene(&scene);
        let mut samples = pre.process(&frames);
        samples.sort_by_key(|s| std::cmp::Reverse(s.duration_frames));
        if let Some(s) = samples.into_iter().next() {
            if s.cloud.len() >= 8 {
                out.push(s.cloud);
            }
        }
    }
    out
}

fn main() {
    // §III: both users ≈ 1.60 m tall, similar weight — behavioural
    // differences only.
    let user_a = UserProfile::generate_with_height(0, 2024, 1.60);
    let user_b = UserProfile::generate_with_height(1, 2024, 1.60);
    println!("== Fig. 3: point-cloud differences (HD / CD / JSD) ==");
    println!(
        "user A: speed {:.2}, rom {:.2}; user B: speed {:.2}, rom {:.2} (heights both 1.60 m)",
        user_a.speed_factor, user_a.rom_scale, user_b.speed_factor, user_b.rom_scale
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "gesture", "HD same", "HD cross", "CD same", "CD cross", "JSD same", "JSD cross"
    );

    let jsd_cfg = JsdConfig::default();
    let mut rows = Vec::new();
    let mut hd_margin_sum = 0.0;
    for (gid, name) in GESTURES {
        let a = capture_reps(&user_a, gid, 11_000 + gid as u64);
        let b = capture_reps(&user_b, gid, 22_000 + gid as u64);
        assert!(
            a.len() >= 5 && b.len() >= 5,
            "not enough captures for {name}"
        );
        // Same-user: split A's reps into two halves (the paper compares
        // within one user's repetitions, skipping identical pairs).
        // Same-user distances average both users' within-repetition
        // spreads (Eq. 1 with C1 = C2 from one user).
        let hd_same = 0.5 * (mean_pairwise(&a, &a, hausdorff) + mean_pairwise(&b, &b, hausdorff));
        let hd_cross = mean_pairwise(&a, &b, hausdorff);
        let cd_same = 0.5 * (mean_pairwise(&a, &a, chamfer) + mean_pairwise(&b, &b, chamfer));
        let cd_cross = mean_pairwise(&a, &b, chamfer);
        let jsd_same = 0.5
            * (mean_pairwise(&a, &a, |x, y| jsd(x, y, &jsd_cfg))
                + mean_pairwise(&b, &b, |x, y| jsd(x, y, &jsd_cfg)));
        let jsd_cross = mean_pairwise(&a, &b, |x, y| jsd(x, y, &jsd_cfg));
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            name, hd_same, hd_cross, cd_same, cd_cross, jsd_same, jsd_cross
        );
        rows.push(format!(
            "{name},{hd_same:.4},{hd_cross:.4},{cd_same:.4},{cd_cross:.4},{jsd_same:.4},{jsd_cross:.4}"
        ));
        assert!(
            cd_cross > cd_same && jsd_cross > jsd_same,
            "{name}: cross-user CD/JSD must exceed same-user (paper Fig. 3)"
        );
        if hd_cross <= hd_same {
            println!("  note: HD (worst-case metric) overlaps for '{name}' at this sample size");
        }
        hd_margin_sum += hd_cross - hd_same;
    }
    assert!(
        hd_margin_sum > 0.0,
        "averaged over gestures, cross-user HD must exceed same-user"
    );
    let p = write_csv(
        "fig03_metrics.csv",
        "gesture,hd_same,hd_cross,cd_same,cd_cross,jsd_same,jsd_cross",
        &rows,
    )
    .expect("write csv");
    println!("\ncsv: {}", p.display());
    println!("paper shape: cross-user > same-user on all three metrics — reproduced.");
}
