//! E3 — Table II: overall gesture recognition and user identification.
//!
//! Six scenario columns (GesturePrint Office / Meeting Room, Pantomime
//! Office / Open, mHomeGes Home, mTransSee Home), all at the closest
//! anchor (1.2 m; 1 m for Pantomime). Reports GRA/GRF1/GRAUC for GesIDNet
//! and the baselines, and UIA/UIF1/UIAUC for GP-S (serialized, default)
//! and GP-P (parallel).

use gestureprint_core::{classification_report, train_classifier, ModelKind};
use gp_datasets::presets;
use gp_experiments::{
    build_dataset, default_train, evaluate_scenario, parse_scale, scale_name, split80, write_csv,
};
use gp_pipeline::LabeledSample;
use gp_radar::Environment;

fn main() {
    let scale = parse_scale();
    println!(
        "== Table II: overall performance (scale: {}) ==",
        scale_name(scale)
    );
    let specs = vec![
        presets::gestureprint(Environment::Office, scale),
        presets::gestureprint(Environment::MeetingRoom, scale),
        presets::pantomime(Environment::Office, scale),
        presets::pantomime(Environment::OpenSpace, scale),
        presets::mhomeges(scale, &[1.2]),
        presets::mtranssee(scale, &[1.2]),
    ];

    let mut rows = Vec::new();
    for spec in specs {
        let t0 = std::time::Instant::now();
        let ds = build_dataset(&spec);
        let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
        let (train, test) = split80(&samples, 0x7AB2);
        let cfg = default_train();
        let r = evaluate_scenario(&train, &test, spec.set.gesture_count(), spec.users, &cfg);

        // Baseline gesture recognition on the same split.
        let gr_train: Vec<(&LabeledSample, usize)> =
            train.iter().map(|s| (*s, s.gesture)).collect();
        let gr_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.gesture)).collect();
        let mut baseline_accs = Vec::new();
        for kind in [ModelKind::PointNet, ModelKind::ProfileCnn, ModelKind::Lstm] {
            let m = train_classifier(
                &gr_train,
                spec.set.gesture_count(),
                &gestureprint_core::TrainConfig {
                    model: kind,
                    ..cfg.clone()
                },
            );
            let rep = classification_report(&m, &gr_test);
            baseline_accs.push((kind.name(), rep.accuracy));
        }

        println!(
            "\n--- {} ({} train / {} test, {:.0}s) ---",
            spec.name,
            train.len(),
            test.len(),
            t0.elapsed().as_secs_f64()
        );
        println!(
            "GR  GesIDNet : GRA {:.4}  GRF1 {:.4}  GRAUC {:.4}",
            r.gr.accuracy, r.gr.macro_f1, r.gr.macro_auc
        );
        for (name, acc) in &baseline_accs {
            println!("GR  {name:<9}: GRA {acc:.4}");
        }
        println!(
            "UI  GP-S     : UIA {:.4}  UIF1 {:.4}  UIAUC {:.4}",
            r.ui_serialized_accuracy, r.ui_serialized_f1, r.ui_serialized_auc
        );
        println!(
            "UI  GP-P     : UIA {:.4}  UIF1 {:.4}  UIAUC {:.4}  EER {:.4}",
            r.ui_parallel.accuracy,
            r.ui_parallel.macro_f1,
            r.ui_parallel.macro_auc,
            r.ui_parallel.eer
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            spec.name,
            r.gr.accuracy,
            r.gr.macro_f1,
            r.gr.macro_auc,
            r.ui_serialized_accuracy,
            r.ui_serialized_f1,
            r.ui_serialized_auc,
            r.ui_parallel.accuracy,
            r.ui_parallel.macro_f1,
            r.ui_parallel.macro_auc,
            baseline_accs[0].1,
            baseline_accs[1].1,
            baseline_accs[2].1,
        ));
    }
    let p = write_csv(
        "tab02_overall.csv",
        "scenario,gra,grf1,grauc,uia_s,uif1_s,uiauc_s,uia_p,uif1_p,uiauc_p,gra_pointnet,gra_profilecnn,gra_lstm",
        &rows,
    )
    .expect("csv");
    println!("\ncsv: {}", p.display());
    println!("paper shape: GRA > 96%, UIA high in both modes across all scenarios.");
}
