//! E6 — Fig. 12: distance robustness with and without data augmentation.
//!
//! mHomeGes-style anchors 1.35 / 1.50 / 1.65 m: train at one anchor, test
//! at every anchor, with augmentation on and off. The paper finds DA
//! recovers the accuracy lost at unseen distances.

use gestureprint_core::{classification_report, train_classifier, TrainConfig};
use gp_datasets::presets;
use gp_experiments::{build_dataset, default_train, parse_scale, scale_name, write_csv};
use gp_pipeline::LabeledSample;

const ANCHORS: [f64; 3] = [1.35, 1.5, 1.65];

fn main() {
    let scale = parse_scale();
    println!(
        "== Fig. 12: distance robustness (scale: {}) ==",
        scale_name(scale)
    );
    let spec = presets::mhomeges(scale, &ANCHORS);
    let ds = build_dataset(&spec);
    println!("{}", ds.summary());

    let mut rows = Vec::new();
    for with_da in [true, false] {
        let tag = if with_da { "with DA" } else { "w/o DA" };
        println!("\n--- {tag} ---");
        println!(
            "{:>10} {:>10} {:>8} {:>8}",
            "train (m)", "test (m)", "GRA", "UIA"
        );
        for &train_d in &ANCHORS {
            // Train split: samples at the training anchor.
            let train: Vec<&LabeledSample> = ds
                .at_distance(train_d)
                .into_iter()
                .map(|s| &s.labeled)
                .collect();
            let mut cfg = TrainConfig { ..default_train() };
            if !with_da {
                cfg.augment = None;
            }
            let gr_pairs: Vec<(&LabeledSample, usize)> =
                train.iter().map(|s| (*s, s.gesture)).collect();
            let gr_model = train_classifier(&gr_pairs, spec.set.gesture_count(), &cfg);
            let ui_pairs: Vec<(&LabeledSample, usize)> =
                train.iter().map(|s| (*s, s.user)).collect();
            let ui_model = train_classifier(&ui_pairs, spec.users, &cfg);

            for &test_d in &ANCHORS {
                if (test_d - train_d).abs() < 1e-9 {
                    continue; // unseen-distance cells only, as in Fig. 12
                }
                let test: Vec<&LabeledSample> = ds
                    .at_distance(test_d)
                    .into_iter()
                    .map(|s| &s.labeled)
                    .collect();
                let gr_test: Vec<(&LabeledSample, usize)> =
                    test.iter().map(|s| (*s, s.gesture)).collect();
                let ui_test: Vec<(&LabeledSample, usize)> =
                    test.iter().map(|s| (*s, s.user)).collect();
                let gra = classification_report(&gr_model, &gr_test).accuracy;
                let uia = classification_report(&ui_model, &ui_test).accuracy;
                println!("{train_d:>10.2} {test_d:>10.2} {gra:>8.3} {uia:>8.3}");
                rows.push(format!("{tag},{train_d:.2},{test_d:.2},{gra:.4},{uia:.4}"));
            }
        }
    }
    let p = write_csv("fig12_robustness.csv", "arm,train_m,test_m,gra,uia", &rows).expect("csv");
    println!("\ncsv: {}", p.display());
    println!("paper shape: with DA, unseen-distance accuracy stays high; without DA it drops.");
}
