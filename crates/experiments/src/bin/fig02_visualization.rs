//! E14 — Fig. 2: gesture point-cloud motion trails for two users.
//!
//! Exports the aggregated clouds of 'push' and 'front' performed by two
//! similar-stature users as CSV (x, y, z, doppler) for plotting.

use gp_datasets::BuildOptions;
use gp_experiments::write_csv;
use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{Preprocessor, PreprocessorConfig};
use gp_radar::{Environment, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let users = [
        UserProfile::generate_with_height(0, 2024, 1.60),
        UserProfile::generate_with_height(1, 2024, 1.60),
    ];
    let gestures = [(12usize, "push"), (11usize, "front")];
    let opts = BuildOptions::default();
    let pre = Preprocessor::new(PreprocessorConfig::default());

    println!("== Fig. 2: point-cloud trails (2 users × 2 gestures) ==");
    let mut rows = Vec::new();
    for (u, profile) in users.iter().enumerate() {
        for (gid, gname) in gestures {
            let seed = 31_000 + u as u64 * 97 + gid as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let perf = Performance::new(profile, GestureSet::Asl15, GestureId(gid), 1.2, &mut rng);
            let scene = Scene::for_performance(perf, Environment::Office, seed);
            let mut sim = RadarSimulator::new(opts.radar.clone(), opts.backend, seed ^ 0x51B);
            let frames = sim.capture_scene(&scene);
            let samples = pre.process(&frames);
            let Some(sample) = samples.into_iter().max_by_key(|s| s.duration_frames) else {
                eprintln!("user {u} gesture {gname}: no segment");
                continue;
            };
            let (lo, hi) = sample.cloud.bounding_box().expect("non-empty");
            println!(
                "user {} '{}': {} points, x-extent {:.2} m, z-extent {:.2} m",
                (b'A' + u as u8) as char,
                gname,
                sample.cloud.len(),
                hi.x - lo.x,
                hi.z - lo.z
            );
            for p in sample.cloud.iter() {
                rows.push(format!(
                    "{u},{gname},{:.4},{:.4},{:.4},{:.3}",
                    p.position.x, p.position.y, p.position.z, p.doppler
                ));
            }
        }
    }
    let p = write_csv("fig02_trails.csv", "user,gesture,x,y,z,doppler", &rows).expect("csv");
    println!("csv: {}", p.display());
    println!("paper shape: same gesture, different users → different spatial envelopes.");
}
