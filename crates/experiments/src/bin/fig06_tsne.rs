//! E13 — Fig. 6: t-SNE visualisation of GesIDNet features.
//!
//! Trains GesIDNet for both tasks, taps the low-level, high-level and
//! fusion features on test samples, embeds each set with t-SNE, and
//! writes CSVs. The paper's shape: fusion features cluster by class more
//! cleanly than either single level, especially for user identification.

use gestureprint_core::{train_classifier, TrainConfig};
use gp_datasets::{build, presets, BuildOptions, Scale};
use gp_eval::tsne::{tsne_2d, TsneConfig};
use gp_experiments::{parse_scale, split80, write_csv};
use gp_pipeline::LabeledSample;
use gp_radar::Environment;

fn main() {
    let scale = match parse_scale() {
        Scale::Paper => Scale::Paper,
        _ => Scale::Custom { users: 5, reps: 10 },
    };
    println!("== Fig. 6: t-SNE of GesIDNet features ==");
    let spec = presets::gestureprint(Environment::Office, scale);
    let ds = build(&spec, &BuildOptions::default());
    let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
    let (train, test) = split80(&samples, 0x75E3);

    for (task, label_of) in [
        (
            "gesture",
            Box::new(|s: &LabeledSample| s.gesture) as Box<dyn Fn(&LabeledSample) -> usize>,
        ),
        ("user", Box::new(|s: &LabeledSample| s.user)),
    ] {
        let classes = if task == "gesture" {
            spec.set.gesture_count()
        } else {
            spec.users
        };
        let pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, label_of(s))).collect();
        let model = train_classifier(&pairs, classes, &TrainConfig::default());

        // Tap features on up to 150 test samples.
        let mut low = Vec::new();
        let mut high = Vec::new();
        let mut fused = Vec::new();
        let mut labels = Vec::new();
        for s in test.iter().take(150) {
            if let Some((l, h, f)) = model.feature_taps(s) {
                low.push(l.iter().map(|v| *v as f64).collect::<Vec<f64>>());
                high.push(h.iter().map(|v| *v as f64).collect());
                fused.push(f.iter().map(|v| *v as f64).collect());
                labels.push(label_of(s));
            }
        }
        println!("{task}: tapped {} samples", labels.len());
        let cfg = TsneConfig::default();
        for (level, feats) in [("low", &low), ("high", &high), ("fusion", &fused)] {
            let emb = tsne_2d(feats, &cfg);
            let rows: Vec<String> = emb
                .iter()
                .zip(&labels)
                .map(|(p, l)| format!("{l},{:.4},{:.4}", p[0], p[1]))
                .collect();
            let name = format!("fig06_{task}_{level}.csv");
            let path = write_csv(&name, "label,x,y", &rows).expect("csv");
            // Quick clustering quality indicator: mean intra-class vs
            // global distance ratio (lower = tighter clusters).
            let quality = cluster_quality(&emb, &labels);
            println!(
                "  {level:<6} → {} (separation score {quality:.3}; higher = better)",
                path.display()
            );
        }
    }
    println!("\npaper shape: fusion features form the clearest class clusters.");
}

/// Ratio of mean inter-class centroid distance to mean intra-class
/// spread in the 2-D embedding (higher = better separated).
fn cluster_quality(emb: &[[f64; 2]], labels: &[usize]) -> f64 {
    let classes: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    let mut centroids = Vec::new();
    let mut intra = 0.0;
    let mut count = 0usize;
    for &c in &classes {
        let pts: Vec<&[f64; 2]> = emb
            .iter()
            .zip(labels)
            .filter(|(_, l)| **l == c)
            .map(|(p, _)| p)
            .collect();
        if pts.is_empty() {
            continue;
        }
        let cx = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        let cy = pts.iter().map(|p| p[1]).sum::<f64>() / pts.len() as f64;
        for p in &pts {
            intra += ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt();
            count += 1;
        }
        centroids.push([cx, cy]);
    }
    let intra = intra / count.max(1) as f64;
    let mut inter = 0.0;
    let mut pairs = 0usize;
    for i in 0..centroids.len() {
        for j in i + 1..centroids.len() {
            inter += ((centroids[i][0] - centroids[j][0]).powi(2)
                + (centroids[i][1] - centroids[j][1]).powi(2))
            .sqrt();
            pairs += 1;
        }
    }
    let inter = inter / pairs.max(1) as f64;
    if intra > 0.0 {
        inter / intra
    } else {
        f64::INFINITY
    }
}
