//! E9 — §VI-B3: robustness to articulation speed.
//!
//! Pantomime-style subset with deliberate slow / normal / fast execution
//! (speed scales 0.7 / 1.0 / 1.4); train on all speeds mixed, test held
//! out. Paper: 97.73% GRA and 98.81% UIA despite speed changes.

use gestureprint_core::{classification_report, train_classifier};
use gp_datasets::presets;
use gp_experiments::{build_dataset, default_train, parse_scale, scale_name, split80, write_csv};
use gp_pipeline::LabeledSample;

fn main() {
    let scale = parse_scale();
    println!(
        "== §VI-B3: motion-speed robustness (scale: {}) ==",
        scale_name(scale)
    );
    let spec = presets::pantomime_speeds(scale);
    let ds = build_dataset(&spec);
    println!("{}", ds.summary());

    let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
    let (train, test) = split80(&samples, 0x5BEE);
    let cfg = default_train();

    let gr_pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.gesture)).collect();
    let gr_model = train_classifier(&gr_pairs, spec.set.gesture_count(), &cfg);
    let gr_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.gesture)).collect();
    let gr = classification_report(&gr_model, &gr_test);

    let ui_pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
    let ui_model = train_classifier(&ui_pairs, spec.users, &cfg);
    let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
    let ui = classification_report(&ui_model, &ui_test);

    println!(
        "\nmixed-speed test: GRA {:.4}  UIA {:.4}",
        gr.accuracy, ui.accuracy
    );

    // Per-speed breakdown.
    let mut rows = vec![format!("all,{:.4},{:.4}", gr.accuracy, ui.accuracy)];
    println!("{:>7} {:>8} {:>8}", "speed", "GRA", "UIA");
    for &speed in &[0.7, 1.0, 1.4] {
        let subset: Vec<&LabeledSample> = ds
            .samples
            .iter()
            .filter(|s| (s.speed_scale - speed).abs() < 1e-9)
            .map(|s| &s.labeled)
            .filter(|s| {
                // Only samples that ended up in the test partition.
                test.iter().any(|t| std::ptr::eq(*t, *s))
            })
            .collect();
        if subset.is_empty() {
            continue;
        }
        let gr_sub: Vec<(&LabeledSample, usize)> = subset.iter().map(|s| (*s, s.gesture)).collect();
        let ui_sub: Vec<(&LabeledSample, usize)> = subset.iter().map(|s| (*s, s.user)).collect();
        let g = classification_report(&gr_model, &gr_sub).accuracy;
        let u = classification_report(&ui_model, &ui_sub).accuracy;
        println!("{speed:>7.1} {g:>8.3} {u:>8.3}");
        rows.push(format!("{speed:.1},{g:.4},{u:.4}"));
    }
    let p = write_csv("exp_speed.csv", "speed,gra,uia", &rows).expect("csv");
    println!("\ncsv: {}", p.display());
    println!(
        "paper shape: accuracy holds across deliberate speed changes (97.7% GRA / 98.8% UIA)."
    );
}
