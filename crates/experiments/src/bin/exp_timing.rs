//! E10 — §VI-B5: time consumption per gesture sample.
//!
//! Measures the preprocessing time (segmentation + noise canceling) and
//! the classification inference time (GR + UI), averaged over 500 runs,
//! matching the paper's protocol. Absolute numbers differ from the
//! paper's hardware; the shape to check is preprocessing + inference ≪
//! gesture duration.

use gestureprint_core::{train_classifier, TrainConfig};
use gp_datasets::{build, presets, BuildOptions, Scale};
use gp_experiments::write_csv;
use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{LabeledSample, Preprocessor, PreprocessorConfig};
use gp_radar::{Backend, Environment, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    println!("== §VI-B5: time consumption ==");
    // A capture to preprocess repeatedly.
    let profile = UserProfile::generate(0, 42);
    let mut rng = StdRng::seed_from_u64(3);
    let perf = Performance::new(&profile, GestureSet::Asl15, GestureId(12), 1.2, &mut rng);
    let scene = Scene::for_performance(perf, Environment::Office, 3);
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 3);
    let frames = sim.capture_scene(&scene);
    let pre = Preprocessor::new(PreprocessorConfig::default());

    let runs = 500;
    let t0 = Instant::now();
    let mut keep = 0usize;
    for _ in 0..runs {
        keep += pre.process(&frames).len();
    }
    let pre_ms = t0.elapsed().as_secs_f64() * 1000.0 / runs as f64;
    assert!(keep > 0);

    // Small trained models for inference timing.
    let spec = presets::gestureprint(Environment::Office, Scale::Custom { users: 4, reps: 6 });
    let ds = build(&spec, &BuildOptions::default());
    let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
    let quick = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    let gr_pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (*s, s.gesture)).collect();
    let gr_model = train_classifier(&gr_pairs, spec.set.gesture_count(), &quick);
    let ui_pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (*s, s.user)).collect();
    let ui_model = train_classifier(&ui_pairs, spec.users, &quick);

    let sample = samples[0];
    let t1 = Instant::now();
    for _ in 0..runs {
        let _ = gr_model.predict(sample);
        let _ = ui_model.predict(sample);
    }
    let infer_ms = t1.elapsed().as_secs_f64() * 1000.0 / runs as f64;

    let total_ms = pre_ms + infer_ms;
    let gesture_s = sample.duration_frames as f64 / 10.0;
    println!("preprocessing (segmentation + noise canceling): {pre_ms:.2} ms/sample");
    println!("inference (GR + UI):                            {infer_ms:.2} ms/sample");
    println!("total:                                          {total_ms:.2} ms/sample");
    println!("mean gesture duration:                          {gesture_s:.2} s");
    println!("\npaper: preprocessing 405.93 ms, inference 677.14 ms (CPU) / 530.99 ms (GPU),");
    println!("total 0.94 s vs 2.43 s gesture duration — processing ≪ gesture time.");
    assert!(
        total_ms / 1000.0 < gesture_s,
        "processing must be faster than the gesture itself"
    );
    let p = write_csv(
        "exp_timing.csv",
        "stage,ms_per_sample",
        &[
            format!("preprocessing,{pre_ms:.3}"),
            format!("inference,{infer_ms:.3}"),
            format!("total,{total_ms:.3}"),
        ],
    )
    .expect("csv");
    println!("csv: {}", p.display());
}
