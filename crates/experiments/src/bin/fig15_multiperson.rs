//! E11 — Fig. 15: multi-person scenarios.
//!
//! Case (a): someone walks past behind the user. Case (b): someone else
//! performs gestures 1.5 m to the side. In both cases the DBSCAN-based
//! noise canceling must isolate the main (user) cluster.

use gp_datasets::BuildOptions;
use gp_experiments::write_csv;
use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::performance::PerformanceConfig;
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{NoiseCanceler, Preprocessor, PreprocessorConfig, Segmenter};
use gp_pointcloud::Vec3;
use gp_radar::scene::{SceneEntity, Walker};
use gp_radar::{Environment, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== Fig. 15: multi-person separation ==");
    let user = UserProfile::generate(0, 42);
    let other = UserProfile::generate(7, 42);
    let opts = BuildOptions::default();

    // Case (a): walker passes behind the user.
    let seed = 77u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let perf = Performance::new(&user, GestureSet::Asl15, GestureId(12), 1.2, &mut rng);
    let mut scene = Scene::for_performance(perf, Environment::MeetingRoom, seed);
    scene.push(SceneEntity::Walker(Walker {
        start: Vec3::new(-3.0, 3.2, 0.0),
        velocity: Vec3::new(1.1, 0.0, 0.0),
        height: 1.76,
        enter_time: 0.4,
    }));
    report_case("(a) walker behind user", &scene, seed, &opts);

    // Case (b): second performer 1.5 m to the side.
    let seed = 78u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let perf = Performance::new(&user, GestureSet::Asl15, GestureId(12), 1.2, &mut rng);
    let mut scene = Scene::for_performance(perf, Environment::MeetingRoom, seed);
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let interferer = Performance::with_config(
        &other,
        GestureSet::Asl15,
        GestureId(4),
        PerformanceConfig {
            distance: 1.6,
            lateral_offset: 2.4,
            ..Default::default()
        },
        &mut rng2,
    );
    scene.push(SceneEntity::Performer(interferer));
    report_case("(b) second performer at +2.4 m", &scene, seed, &opts);

    println!("\npaper shape: the main cluster tracks the user; other clusters are discarded.");
    println!("minimum separable distance is governed by DBSCAN D_max (§VII-1): performers");
    println!("closer than ≈2·D_max merge through their arm spans, as the paper acknowledges.");
}

fn report_case(label: &str, scene: &Scene, seed: u64, opts: &BuildOptions) {
    let mut sim = RadarSimulator::new(opts.radar.clone(), opts.backend, seed ^ 0x51B);
    let frames = sim.capture_scene(scene);
    let segments = Segmenter::default().segment(&frames);
    let Some(seg) = segments.iter().max_by_key(|s| s.len()) else {
        println!("{label}: no segment found");
        return;
    };
    let aggregated = gp_radar::frame::aggregate(&frames[seg.start..seg.end]);
    let canceler = NoiseCanceler::default();
    let clustering = canceler.clusters(&aggregated);
    let main = canceler.clean(&aggregated);
    let centroid = main.centroid().expect("main cluster non-empty");
    println!("\n{label}:");
    println!(
        "  aggregated {} points → {} clusters + {} noise",
        aggregated.len(),
        clustering.cluster_count(),
        clustering.noise_count()
    );
    println!(
        "  main cluster: {} points, centroid ({:.2}, {:.2}, {:.2})",
        main.len(),
        centroid.x,
        centroid.y,
        centroid.z
    );
    assert!(
        centroid.x.abs() < 0.7 && (centroid.y - 1.2).abs() < 0.8,
        "main cluster should track the user at (0, 1.2)"
    );
    // Export cluster assignments for plotting.
    let mut rows = Vec::new();
    for (i, p) in aggregated.iter().enumerate() {
        let cluster = match clustering.labels()[i] {
            gp_pointcloud::ClusterLabel::Cluster(id) => id as i64,
            gp_pointcloud::ClusterLabel::Noise => -1,
        };
        rows.push(format!(
            "{},{cluster},{:.3},{:.3},{:.3}",
            label.chars().nth(1).expect("label"),
            p.position.x,
            p.position.y,
            p.position.z
        ));
    }
    let name = if label.starts_with("(a)") {
        "fig15_case_a.csv"
    } else {
        "fig15_case_b.csv"
    };
    let p = write_csv(name, "case,cluster,x,y,z", &rows).expect("csv");
    println!("  csv: {}", p.display());

    // The full pipeline should also produce a clean sample.
    let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
    assert!(
        !samples.is_empty(),
        "pipeline should still yield the user's gesture"
    );
}
