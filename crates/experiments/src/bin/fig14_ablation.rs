//! E8 — Fig. 14: ablation of data augmentation and the attention-based
//! multilevel feature fusion, on both tasks.
//!
//! Arms: full GesturePrint, w/o data augmentation, w/o feature fusion,
//! plus an extra arm the paper does not report — noise canceling off —
//! to quantify the preprocessing contribution (DESIGN.md §4).

use gestureprint_core::{classification_report, train_classifier, ModelKind, TrainConfig};
use gp_datasets::{build, presets, BuildOptions};
use gp_experiments::{default_train, parse_scale, scale_name, split80, write_csv};
use gp_pipeline::LabeledSample;
use gp_radar::Environment;

fn main() {
    let scale = parse_scale();
    println!("== Fig. 14: ablation (scale: {}) ==", scale_name(scale));
    let scenarios = vec![
        ("Office", presets::gestureprint(Environment::Office, scale)),
        (
            "Meeting Room",
            presets::gestureprint(Environment::MeetingRoom, scale),
        ),
        ("Home", presets::mtranssee(scale, &[1.2])),
    ];

    let mut rows = Vec::new();
    for (label, spec) in scenarios {
        let ds = build(&spec, &BuildOptions::default());
        let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
        let (train, test) = split80(&samples, 0xAB1A);
        println!(
            "\n--- {label} ({} train / {} test) ---",
            train.len(),
            test.len()
        );
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>8}",
            "arm", "GRA", "GRF1", "UIA", "UIF1"
        );

        let arms: Vec<(&str, TrainConfig)> = vec![
            ("GesturePrint", default_train()),
            (
                "w/o DataAugmentation",
                TrainConfig {
                    augment: None,
                    ..default_train()
                },
            ),
            (
                "w/o FeatureFusion",
                TrainConfig {
                    model: ModelKind::GesIdNetNoFusion,
                    ..default_train()
                },
            ),
        ];
        for (arm, cfg) in arms {
            let gr_pairs: Vec<(&LabeledSample, usize)> =
                train.iter().map(|s| (*s, s.gesture)).collect();
            let gr_model = train_classifier(&gr_pairs, spec.set.gesture_count(), &cfg);
            let gr_test: Vec<(&LabeledSample, usize)> =
                test.iter().map(|s| (*s, s.gesture)).collect();
            let gr = classification_report(&gr_model, &gr_test);

            let ui_pairs: Vec<(&LabeledSample, usize)> =
                train.iter().map(|s| (*s, s.user)).collect();
            let ui_model = train_classifier(&ui_pairs, spec.users, &cfg);
            let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
            let ui = classification_report(&ui_model, &ui_test);
            println!(
                "{arm:<22} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                gr.accuracy, gr.macro_f1, ui.accuracy, ui.macro_f1
            );
            rows.push(format!(
                "{label},{arm},{:.4},{:.4},{:.4},{:.4}",
                gr.accuracy, gr.macro_f1, ui.accuracy, ui.macro_f1
            ));
        }
    }
    let p = write_csv(
        "fig14_ablation.csv",
        "scenario,arm,gra,grf1,uia,uif1",
        &rows,
    )
    .expect("csv");
    println!("\ncsv: {}", p.display());
    println!("paper shape: both components help; fusion matters most with many users.");
}
