//! E5 — Fig. 11: impact of radar–user distance on GRA and UIA.
//!
//! mTransSee-style anchors from 1.2 m to 4.8 m (13 positions). The paper
//! observes reliable performance within 3.6 m and a graceful decline
//! beyond as CFAR misses thin out the clouds.

use gestureprint_core::{classification_report, train_classifier};
use gp_datasets::presets;
use gp_experiments::{build_dataset, default_train, parse_scale, scale_name, split80, write_csv};
use gp_pipeline::LabeledSample;

fn main() {
    let scale = parse_scale();
    let distances = presets::mtranssee_distances();
    println!(
        "== Fig. 11: impact of distance (scale: {}) ==",
        scale_name(scale)
    );
    println!("{:>6} {:>8} {:>8} {:>9}", "d (m)", "GRA", "UIA", "samples");

    let mut rows = Vec::new();
    for &d in &distances {
        let spec = presets::mtranssee(scale, &[d]);
        let ds = build_dataset(&spec);
        let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
        if samples.len() < 20 {
            println!("{d:>6.1} {:>8} {:>8} {:>9}", "-", "-", samples.len());
            rows.push(format!("{d:.1},,,{}", samples.len()));
            continue;
        }
        let (train, test) = split80(&samples, 0xD157);
        let cfg = default_train();
        let gr_train: Vec<(&LabeledSample, usize)> =
            train.iter().map(|s| (*s, s.gesture)).collect();
        let gr_model = train_classifier(&gr_train, spec.set.gesture_count(), &cfg);
        let gr_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.gesture)).collect();
        let gr = classification_report(&gr_model, &gr_test);

        let ui_train: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
        let ui_model = train_classifier(&ui_train, spec.users, &cfg);
        let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
        let ui = classification_report(&ui_model, &ui_test);

        println!(
            "{d:>6.1} {:>8.3} {:>8.3} {:>9}",
            gr.accuracy,
            ui.accuracy,
            samples.len()
        );
        rows.push(format!(
            "{d:.1},{:.4},{:.4},{}",
            gr.accuracy,
            ui.accuracy,
            samples.len()
        ));
    }
    let p = write_csv("fig11_distance.csv", "distance_m,gra,uia,samples", &rows).expect("csv");
    println!("\ncsv: {}", p.display());
    println!("paper shape: ≥94% GRA / ≥92% UIA within 3.6 m, declining beyond 3.9 m");
    println!("             (86.9% GRA / 81.2% UIA at 4.8 m).");
}
