//! E4 — Fig. 10: user-identification ROC curves and EER per dataset.
//!
//! Trains the parallel-mode identifier on each scenario and pools
//! one-vs-rest verification scores into a ROC curve + EER (paper reports
//! an average EER of 0.75%, none exceeding 1.6%).

use gestureprint_core::{classification_report, train_classifier};
use gp_codec::{Encode, Value};
use gp_datasets::presets;
use gp_eval::roc::{one_vs_rest_scores, RocEerSummary};
use gp_experiments::{
    build_dataset, default_train, parse_scale, scale_name, split80, write_csv,
    write_report_artifact,
};
use gp_pipeline::LabeledSample;
use gp_radar::Environment;

fn main() {
    let scale = parse_scale();
    println!(
        "== Fig. 10: ROC / EER for user identification (scale: {}) ==",
        scale_name(scale)
    );
    let specs = vec![
        presets::gestureprint(Environment::Office, scale),
        presets::gestureprint(Environment::MeetingRoom, scale),
        presets::pantomime(Environment::Office, scale),
        presets::pantomime(Environment::OpenSpace, scale),
        presets::mhomeges(scale, &[1.2]),
        presets::mtranssee(scale, &[1.2]),
    ];
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for spec in specs {
        let ds = build_dataset(&spec);
        let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
        let (train, test) = split80(&samples, 0xF1610);
        let ui_train: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
        let model = train_classifier(&ui_train, spec.users, &default_train());
        let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
        let report = classification_report(&model, &ui_test);
        let (scores, positives) =
            one_vs_rest_scores(&report.probabilities, &report.labels, spec.users);
        let summary = RocEerSummary::from_scores(spec.name.clone(), &scores, &positives);
        println!(
            "{:<28} EER {:.3}%  ({} ROC points)",
            spec.name,
            summary.eer * 100.0,
            summary.points.len()
        );
        for pt in summary
            .points
            .iter()
            .step_by((summary.points.len() / 60).max(1))
        {
            rows.push(format!("{},{:.5},{:.5}", spec.name, pt.fpr, pt.tpr));
        }
        summaries.push(summary);
    }
    let avg = summaries.iter().map(|s| s.eer).sum::<f64>() / summaries.len() as f64;
    println!(
        "\naverage EER: {:.3}% (paper: 0.75%, max 1.58%)",
        avg * 100.0
    );
    let p = write_csv("fig10_roc.csv", "scenario,fpr,tpr", &rows).expect("csv");
    println!("csv: {}", p.display());
    let payload = Value::record([
        ("figure", Value::Str("fig10_roc_eer".into())),
        ("scale", scale.encode()),
        ("average_eer", avg.encode()),
        ("scenarios", summaries.encode()),
    ]);
    let p = write_report_artifact("fig10_roc_eer.json", payload).expect("report artifact");
    println!("report artifact: {}", p.display());
}
