//! E4 — Fig. 10: user-identification ROC curves and EER per dataset.
//!
//! Trains the parallel-mode identifier on each scenario and pools
//! one-vs-rest verification scores into a ROC curve + EER (paper reports
//! an average EER of 0.75%, none exceeding 1.6%).

use gestureprint_core::{classification_report, train_classifier};
use gp_datasets::presets;
use gp_eval::roc::{eer, one_vs_rest_scores, roc_curve};
use gp_experiments::{build_dataset, default_train, parse_scale, scale_name, split80, write_csv};
use gp_pipeline::LabeledSample;
use gp_radar::Environment;

fn main() {
    let scale = parse_scale();
    println!(
        "== Fig. 10: ROC / EER for user identification (scale: {}) ==",
        scale_name(scale)
    );
    let specs = vec![
        presets::gestureprint(Environment::Office, scale),
        presets::gestureprint(Environment::MeetingRoom, scale),
        presets::pantomime(Environment::Office, scale),
        presets::pantomime(Environment::OpenSpace, scale),
        presets::mhomeges(scale, &[1.2]),
        presets::mtranssee(scale, &[1.2]),
    ];
    let mut rows = Vec::new();
    let mut eers = Vec::new();
    for spec in specs {
        let ds = build_dataset(&spec);
        let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
        let (train, test) = split80(&samples, 0xF1610);
        let ui_train: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
        let model = train_classifier(&ui_train, spec.users, &default_train());
        let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
        let report = classification_report(&model, &ui_test);
        let (scores, positives) =
            one_vs_rest_scores(&report.probabilities, &report.labels, spec.users);
        let curve = roc_curve(&scores, &positives);
        let e = eer(&scores, &positives);
        println!(
            "{:<28} EER {:.3}%  ({} ROC points)",
            spec.name,
            e * 100.0,
            curve.len()
        );
        for pt in curve.iter().step_by((curve.len() / 60).max(1)) {
            rows.push(format!("{},{:.5},{:.5}", spec.name, pt.fpr, pt.tpr));
        }
        eers.push(e);
    }
    let avg = eers.iter().sum::<f64>() / eers.len() as f64;
    println!(
        "\naverage EER: {:.3}% (paper: 0.75%, max 1.58%)",
        avg * 100.0
    );
    let p = write_csv("fig10_roc.csv", "scenario,fpr,tpr", &rows).expect("csv");
    println!("csv: {}", p.display());
}
