//! E12 — §VII-2: cross-environment generalisation.
//!
//! Train on Office, test on Meeting Room (and vice versa) with the same
//! 17 participants. Paper: >90% GRA and ≈75% UIA across environments.

use gestureprint_core::{classification_report, train_classifier};
use gp_datasets::presets;
use gp_experiments::{build_dataset, default_train, parse_scale, scale_name, write_csv};
use gp_pipeline::LabeledSample;
use gp_radar::Environment;

fn main() {
    let scale = parse_scale();
    println!(
        "== §VII-2: cross-environment (scale: {}) ==",
        scale_name(scale)
    );
    let office = build_dataset(&presets::gestureprint(Environment::Office, scale));
    let meeting = build_dataset(&presets::gestureprint(Environment::MeetingRoom, scale));
    let gestures = office.spec.set.gesture_count();
    let users = office.spec.users;

    let mut rows = Vec::new();
    for (train_ds, test_ds, label) in [
        (&office, &meeting, "Office → Meeting Room"),
        (&meeting, &office, "Meeting Room → Office"),
    ] {
        let train: Vec<&LabeledSample> = train_ds.samples.iter().map(|s| &s.labeled).collect();
        let test: Vec<&LabeledSample> = test_ds.samples.iter().map(|s| &s.labeled).collect();
        let cfg = default_train();

        let gr_pairs: Vec<(&LabeledSample, usize)> =
            train.iter().map(|s| (*s, s.gesture)).collect();
        let gr_model = train_classifier(&gr_pairs, gestures, &cfg);
        let gr_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.gesture)).collect();
        let gra = classification_report(&gr_model, &gr_test).accuracy;

        let ui_pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
        let ui_model = train_classifier(&ui_pairs, users, &cfg);
        let ui_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
        let uia = classification_report(&ui_model, &ui_test).accuracy;

        println!("{label}: GRA {gra:.4}  UIA {uia:.4}");
        rows.push(format!("{label},{gra:.4},{uia:.4}"));
    }
    let p = write_csv("exp_cross_env.csv", "direction,gra,uia", &rows).expect("csv");
    println!("csv: {}", p.display());
    println!("paper shape: GRA stays >90%; UIA drops to ≈75% across environments.");
}
