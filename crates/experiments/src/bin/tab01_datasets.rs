//! E2 — Table I: dataset summary.
//!
//! Builds (at the selected scale) the four datasets and prints the
//! paper's summary table plus realised sample counts.

use gp_datasets::presets;
use gp_experiments::{build_dataset, parse_scale, scale_name};
use gp_radar::Environment;

fn main() {
    let scale = parse_scale();
    println!(
        "== Table I: dataset summary (scale: {}) ==",
        scale_name(scale)
    );
    println!(
        "{:<28} {:>9} {:>8} {:>8} {:>9}",
        "Dataset", "Gestures", "Users", "Samples", "Dropped"
    );
    let specs = vec![
        presets::gestureprint(Environment::Office, scale),
        presets::gestureprint(Environment::MeetingRoom, scale),
        presets::pantomime(Environment::Office, scale),
        presets::pantomime(Environment::OpenSpace, scale),
        presets::mhomeges(scale, &[1.2]),
        presets::mtranssee(scale, &[1.2]),
    ];
    for spec in specs {
        let ds = build_dataset(&spec);
        println!(
            "{:<28} {:>9} {:>8} {:>8} {:>9}",
            spec.name,
            spec.set.gesture_count(),
            spec.users,
            ds.samples.len(),
            ds.dropped
        );
    }
    println!("\npaper: GesturePrint 15×17 (9,332 samples over 2 rooms), Pantomime 21×26/14,");
    println!("       mHomeGes 10×(8-14), mTransSee 5×32.");
}
