//! E7 — Fig. 13: gesture lasting time (segment length in frames) per
//! gesture and environment, for one user's repetitions.
//!
//! The paper shows users vary their motion speed across repetitions; the
//! segment-length distributions per gesture make that visible.
//!
//! Emits `results/fig13_duration.csv` (for plotting) and the
//! machine-comparable `results/fig13_duration.json` report artifact.

use gp_codec::{Encode, Value};
use gp_datasets::{build, presets, BuildOptions, Scale};
use gp_experiments::{parse_scale, write_csv, write_report_artifact};
use gp_kinematics::gestures::GestureSet;
use gp_radar::Environment;

fn main() {
    let scale = match parse_scale() {
        Scale::Paper => Scale::Custom { users: 1, reps: 20 },
        _ => Scale::Custom { users: 1, reps: 12 },
    };
    println!("== Fig. 13: gesture lasting time (frames) ==");
    let mut rows = Vec::new();
    let mut entries: Vec<Value> = Vec::new();
    for env in [Environment::MeetingRoom, Environment::Office] {
        let spec = presets::gestureprint(env, scale);
        let ds = build(&spec, &BuildOptions::default());
        println!("\n--- {} ---", env.name());
        println!("{:<14} {:>6} {:>6} {:>6}", "gesture", "min", "mean", "max");
        for g in 0..spec.set.gesture_count() {
            let durations: Vec<usize> = ds
                .samples
                .iter()
                .filter(|s| s.labeled.gesture == g)
                .map(|s| s.labeled.duration_frames)
                .collect();
            if durations.is_empty() {
                continue;
            }
            let min = *durations.iter().min().expect("non-empty");
            let max = *durations.iter().max().expect("non-empty");
            let mean = durations.iter().sum::<usize>() as f64 / durations.len() as f64;
            let name = GestureSet::Asl15.gesture_name(gp_kinematics::gestures::GestureId(g));
            println!("{name:<14} {min:>6} {mean:>6.1} {max:>6}");
            rows.push(format!("{},{name},{min},{mean:.1},{max}", env.name()));
            entries.push(Value::record([
                ("environment", env.encode()),
                ("gesture", name.encode()),
                ("samples", durations.len().encode()),
                ("min_frames", min.encode()),
                ("mean_frames", mean.encode()),
                ("max_frames", max.encode()),
            ]));
        }
        let all: Vec<usize> = ds
            .samples
            .iter()
            .map(|s| s.labeled.duration_frames)
            .collect();
        let mean_s = all.iter().sum::<usize>() as f64 / all.len().max(1) as f64 / 10.0;
        println!("average gesture duration: {mean_s:.2} s (paper: 2.43 s)");
    }
    let p = write_csv(
        "fig13_duration.csv",
        "environment,gesture,min,mean,max",
        &rows,
    )
    .expect("csv");
    println!("\ncsv: {}", p.display());
    let payload = Value::record([
        ("figure", Value::Str("fig13_duration".into())),
        ("scale", scale.encode()),
        ("rows", Value::Seq(entries)),
    ]);
    let p = write_report_artifact("fig13_duration.json", payload).expect("report artifact");
    println!("report artifact: {}", p.display());
    println!("paper shape: lasting time varies across repetitions (≈15–35 frames) and by gesture.");
}
