//! Golden artifact compatibility: the committed fixtures under
//! `crates/testkit/fixtures/` were written by an earlier revision of
//! the artifact schema and MUST keep loading on every PR. A failure
//! here means the schema drifted silently — either restore
//! compatibility (preferred: additive fields with `get_or` defaults)
//! or bump `SCHEMA_VERSION` *and* regenerate the fixtures consciously:
//!
//! ```sh
//! cargo test -p gp-testkit --test golden_artifacts -- --ignored
//! ```
//!
//! (see TESTING.md "Golden artifact fixtures").

use gestureprint_core::artifact::{kinds, Artifact, ModelArtifact, SCHEMA_VERSION};
use gestureprint_core::{
    classification_report, train_classifier, train_rd_classifier, ClassificationReport, ModelKind,
    TrainConfig, TrainedModel,
};
use gp_codec::{Decode, Encode, Value};
use gp_models::features::FeatureConfig;
use gp_pipeline::LabeledSample;
use gp_rd::RdLabeledSample;
use gp_testkit::{quick_rd_train, toy_labeled_samples, toy_rd_samples};
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name)).unwrap_or_else(|e| {
        panic!("missing golden fixture {name}: {e} (see file docs to regenerate)")
    })
}

/// The exact configuration the model fixture was trained with. Changing
/// this requires regenerating the fixtures.
fn fixture_train_config() -> TrainConfig {
    TrainConfig {
        model: ModelKind::Lstm, // the smallest architecture → smallest committed file
        epochs: 8,
        augment: None,
        feature: FeatureConfig {
            num_points: 24,
            ..FeatureConfig::default()
        },
        seed: 42,
        ..TrainConfig::default()
    }
}

fn fixture_samples() -> Vec<LabeledSample> {
    toy_labeled_samples(3)
}

fn train_fixture_model() -> TrainedModel {
    let samples = fixture_samples();
    let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
    train_classifier(&pairs, 2, &fixture_train_config())
}

#[test]
fn model_fixture_still_loads() {
    let bytes = read_fixture("model_lstm_v1.json");
    let artifact = Artifact::from_bytes(&bytes).expect("envelope parses");
    assert!(
        artifact.schema_version <= SCHEMA_VERSION,
        "fixture from the future? regenerate it"
    );
    assert!(artifact.expect_kind(kinds::MODEL).is_ok());

    let model = TrainedModel::load_artifact(&bytes).expect("model reconstructs from bytes alone");
    assert_eq!(model.kind(), ModelKind::Lstm);
    assert_eq!(model.classes(), 2);
    for s in &fixture_samples() {
        let p = model.probabilities(s);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{p:?}");
    }

    // Anti-drift: decoding the payload and re-encoding it must be the
    // identity. A renamed/removed field fails the decode above; an
    // *added* field defaulting via `get_or` changes the re-encoding and
    // fails here — forcing a conscious fixture regeneration instead of
    // silent drift.
    let reencoded = ModelArtifact::decode(&artifact.payload)
        .expect("payload decodes")
        .encode();
    assert_eq!(
        reencoded, artifact.payload,
        "model payload schema drifted; regenerate fixtures deliberately"
    );
}

/// The exact configuration the RD model fixture was trained with.
/// Changing this requires regenerating the fixtures.
fn fixture_rd_train_config() -> TrainConfig {
    TrainConfig {
        epochs: 6,
        seed: 42,
        ..quick_rd_train()
    }
}

fn train_fixture_rd_model() -> TrainedModel {
    let samples = toy_rd_samples(3);
    let pairs: Vec<(&RdLabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
    train_rd_classifier(&pairs, 2, &fixture_rd_train_config())
}

#[test]
fn rd_model_fixture_still_loads() {
    // Committed in both envelope formats — the RD backend's schema
    // compatibility gate, mirroring the point-cloud model fixture.
    for name in ["rd_model_v1.json", "rd_model_v1.bin"] {
        let bytes = read_fixture(name);
        let artifact = Artifact::from_bytes(&bytes).expect("envelope parses");
        assert!(
            artifact.schema_version <= SCHEMA_VERSION,
            "fixture from the future? regenerate it"
        );
        assert!(artifact.expect_kind(kinds::MODEL).is_ok());

        let model =
            TrainedModel::load_artifact(&bytes).expect("RD model reconstructs from bytes alone");
        assert_eq!(model.kind(), ModelKind::RdNet);
        assert_eq!(model.classes(), 2);
        for s in &toy_rd_samples(3) {
            let p = model.probabilities_rd(s);
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{p:?}");
        }

        // Anti-drift: decode → encode must be the identity (see the
        // point-cloud model fixture docs). The RD payload additionally
        // carries the rd_feature field, which must survive unchanged.
        let decoded = ModelArtifact::decode(&artifact.payload).expect("payload decodes");
        assert_eq!(
            decoded.clone().encode(),
            artifact.payload,
            "RD model payload schema drifted; regenerate fixtures deliberately"
        );
        assert!(artifact
            .payload
            .as_map()
            .unwrap()
            .iter()
            .any(|(k, _)| k == "rd_feature"));
    }
}

#[test]
fn report_fixture_still_loads() {
    let bytes = read_fixture("report_v1.json");
    let artifact = Artifact::from_bytes(&bytes).expect("envelope parses");
    assert!(artifact.expect_kind(kinds::REPORT).is_ok());
    let report: ClassificationReport = artifact.payload.get("report").expect("report decodes");
    // Internal consistency, not golden numbers: metrics must agree with
    // the persisted raw predictions (robust to cross-platform libm
    // differences at regeneration time).
    let manual = report
        .predictions
        .iter()
        .zip(&report.labels)
        .filter(|(p, l)| p == l)
        .count() as f64
        / report.labels.len().max(1) as f64;
    assert!((report.accuracy - manual).abs() < 1e-12);
    assert_eq!(report.probabilities.len(), report.labels.len());
    let reencoded: Value = report.encode();
    assert_eq!(
        &reencoded,
        artifact.payload.field("report").unwrap(),
        "report payload schema drifted; regenerate fixtures deliberately"
    );
}

/// The deterministic snapshot the telemetry fixture is built from — no
/// timers, fixed values, so regeneration is byte-stable across machines.
fn fixture_telemetry_snapshot() -> gp_telemetry::TelemetrySnapshot {
    use gp_telemetry::{Histogram, TelemetrySnapshot};
    let mut snap = TelemetrySnapshot::new();
    snap.counters.insert("net.accepted".into(), 8);
    snap.counters.insert("net.decoded_frames".into(), 2880);
    snap.counters.insert("serve.pool.jobs".into(), 96);
    snap.counters.insert("serve.pool.busy_us".into(), 410_000);
    snap.gauges.insert("serve.gate.depth".into(), 0);
    snap.gauges.insert("serve.pool.workers".into(), 2);
    let mut inference = Histogram::new();
    for v in [850u64, 900, 1_200, 1_450, 3_900, 52_000] {
        inference.record(v);
    }
    snap.histograms
        .insert("serve.stage.inference".into(), inference);
    snap.histograms
        .insert("serve.stage.queue_wait".into(), Histogram::new());
    snap.attrs.insert("sessions".into(), Value::Int(8));
    snap
}

#[test]
fn telemetry_fixture_still_loads() {
    use gp_telemetry::{TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION};
    let bytes = read_fixture("telemetry_v1.json");
    let artifact = Artifact::from_bytes(&bytes).expect("envelope parses");
    assert!(artifact.expect_kind(kinds::TELEMETRY).is_ok());
    let snap = TelemetrySnapshot::decode(&artifact.payload).expect("snapshot decodes");
    assert!(
        snap.schema_version <= TELEMETRY_SCHEMA_VERSION,
        "fixture from the future? regenerate it"
    );
    // The histograms survive with exact counts and queryable
    // percentiles — the properties every snapshot consumer relies on.
    let inference = snap
        .histograms
        .get("serve.stage.inference")
        .expect("stage histogram present");
    assert_eq!(inference.count(), 6);
    assert_eq!(inference.percentile(0.0), Some(850));
    assert_eq!(inference.percentile(100.0), Some(52_000));

    // Anti-drift: decode → encode must be the identity, so schema
    // changes force a conscious regeneration (see model fixture docs).
    assert_eq!(
        snap.encode(),
        artifact.payload,
        "telemetry snapshot schema drifted; regenerate fixtures deliberately"
    );
    // And the current encoder still produces these exact bytes for the
    // fixture's snapshot — byte-stable serialization, both directions.
    assert_eq!(snap, fixture_telemetry_snapshot());
}

/// The deterministic snapshot the RD telemetry fixture is built from —
/// the counters and stage histograms the RD serving path exports
/// (`serve.rd.*` alongside the shared `serve.stage.*` scheme), with
/// fixed values so regeneration is byte-stable across machines.
fn fixture_rd_telemetry_snapshot() -> gp_telemetry::TelemetrySnapshot {
    use gp_telemetry::{Histogram, TelemetrySnapshot};
    let mut snap = TelemetrySnapshot::new();
    snap.counters.insert("serve.rd.frames".into(), 1_200);
    snap.counters.insert("serve.rd.segments".into(), 14);
    snap.counters.insert("serve.rd.results".into(), 14);
    snap.counters.insert("serve.rd.fallback".into(), 3);
    snap.gauges.insert("serve.sessions.live".into(), 2);
    let mut inference = Histogram::new();
    for v in [2_100u64, 2_400, 2_650, 3_000, 4_800, 61_000] {
        inference.record(v);
    }
    snap.histograms
        .insert("serve.stage.inference".into(), inference);
    let mut segmentation = Histogram::new();
    for v in [140u64, 150, 165, 180] {
        segmentation.record(v);
    }
    snap.histograms
        .insert("serve.stage.segmentation".into(), segmentation);
    snap.attrs
        .insert("backend".into(), Value::Str("range_doppler".into()));
    snap
}

#[test]
fn rd_telemetry_fixture_still_loads() {
    use gp_telemetry::{TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION};
    for name in ["rd_telemetry_v1.json", "rd_telemetry_v1.bin"] {
        let bytes = read_fixture(name);
        let artifact = Artifact::from_bytes(&bytes).expect("envelope parses");
        assert!(artifact.expect_kind(kinds::TELEMETRY).is_ok());
        let snap = TelemetrySnapshot::decode(&artifact.payload).expect("snapshot decodes");
        assert!(
            snap.schema_version <= TELEMETRY_SCHEMA_VERSION,
            "fixture from the future? regenerate it"
        );
        assert_eq!(snap.counters["serve.rd.segments"], 14);
        let inference = snap
            .histograms
            .get("serve.stage.inference")
            .expect("stage histogram present");
        assert_eq!(inference.count(), 6);
        assert_eq!(inference.percentile(100.0), Some(61_000));

        // Anti-drift: decode → encode must be the identity (see the
        // point-cloud telemetry fixture docs).
        assert_eq!(
            snap.encode(),
            artifact.payload,
            "RD telemetry snapshot schema drifted; regenerate fixtures deliberately"
        );
        assert_eq!(snap, fixture_rd_telemetry_snapshot());
    }
}

/// The deterministic gallery the identity fixtures are built from — a
/// two-user gallery with hand-picked embeddings and a finite calibrated
/// threshold, so regeneration is byte-stable across machines.
fn fixture_gallery() -> gp_store::EmbeddingGallery {
    let mut gallery = gp_store::EmbeddingGallery::new();
    // Two samples per user so the persisted state exercises the running
    // sum (count > 1), not just single-enrollment templates.
    gallery.enroll("ada", &[0.25, -1.5, 3.0, 0.0]).unwrap();
    gallery.enroll("ada", &[0.75, -0.5, 2.0, 1.0]).unwrap();
    gallery.enroll("bob", &[-4.0, 2.25, 0.5, -1.0]).unwrap();
    gallery.enroll("bob", &[-3.0, 1.75, 1.5, -2.0]).unwrap();
    gallery.set_threshold(1.8125); // exactly representable: stable text
    gallery
}

#[test]
fn gallery_fixture_still_loads() {
    use gp_store::{EmbeddingGallery, Identification};
    // The fixture is committed in both artifact formats: the JSON
    // envelope (human-diffable) and the binary envelope (what the store
    // registry persists by default for galleries).
    for name in ["gallery_v1.json", "gallery_v1.bin"] {
        let bytes = read_fixture(name);
        let artifact = Artifact::from_bytes(&bytes).expect("envelope parses");
        assert!(
            artifact.schema_version <= SCHEMA_VERSION,
            "fixture from the future? regenerate it"
        );
        assert!(artifact.expect_kind(kinds::GALLERY).is_ok());

        let gallery = EmbeddingGallery::decode(&artifact.payload).expect("gallery decodes");
        assert_eq!(gallery.users(), 2);
        assert_eq!(gallery.samples(), 4);
        assert_eq!(gallery.dim(), 4);
        // Centroids reconstruct exactly — the sums persist as raw f64
        // bytes, so no decimal round-trip loss is tolerated.
        assert_eq!(
            gallery.entry("ada").expect("ada enrolled").centroid(),
            vec![0.5, -1.0, 2.5, 0.5]
        );
        // Open-set behaviour survives persistence: a probe on ada's
        // centroid is accepted, a far-away probe is rejected by the
        // stored threshold.
        assert_eq!(gallery.identify(&[0.5, -1.0, 2.5, 0.5]).user(), Some("ada"));
        assert!(matches!(
            gallery.identify(&[50.0, 50.0, 50.0, 50.0]),
            Identification::Rejected(Some(_))
        ));

        // Anti-drift: decode → encode must be the identity (see model
        // fixture docs), and both formats carry the same payload.
        assert_eq!(
            gallery.encode(),
            artifact.payload,
            "gallery payload schema drifted; regenerate fixtures deliberately"
        );
        assert_eq!(gallery, fixture_gallery());
    }
}

#[test]
fn baseline_fixture_still_parses() {
    let text = String::from_utf8(read_fixture("baseline_v1.json")).expect("utf8");
    let baseline = criterion::Baseline::parse(&text)
        .expect("committed baseline must stay readable by --baseline");
    assert_eq!(baseline.mean_ns("dsp/fft_256"), Some(52341.7));
    assert_eq!(
        baseline.mean_ns("serve/stream_replay_1worker"),
        Some(1.25e9)
    );
    assert_eq!(baseline.mean_ns("absent"), None);
}

/// Rewrites every golden fixture from the current schema. Run after a
/// *deliberate* schema change (with a `SCHEMA_VERSION` bump when the
/// change is breaking):
///
/// ```sh
/// cargo test -p gp-testkit --test golden_artifacts -- --ignored
/// ```
#[test]
#[ignore = "regenerates the committed golden fixtures in place"]
fn regenerate_golden_fixtures() {
    let model = train_fixture_model();
    std::fs::create_dir_all(Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")).unwrap();
    std::fs::write(fixture_path("model_lstm_v1.json"), model.save_artifact()).unwrap();

    let samples = fixture_samples();
    let pairs: Vec<(&LabeledSample, usize)> = samples.iter().map(|s| (s, s.user)).collect();
    let report = classification_report(&model, &pairs);
    let payload = Value::record([
        ("report", report.encode()),
        ("task", Value::Str("user_identification".into())),
        ("dataset", Value::Str("toy_labeled_samples(3)".into())),
    ]);
    std::fs::write(
        fixture_path("report_v1.json"),
        Artifact::new(kinds::REPORT, payload).to_bytes(),
    )
    .unwrap();

    let mut baseline = criterion::Baseline::default();
    baseline.record("dsp/fft_256", 52341.7);
    baseline.record("serve/stream_replay_1worker", 1.25e9);
    std::fs::write(fixture_path("baseline_v1.json"), baseline.to_json()).unwrap();

    std::fs::write(
        fixture_path("telemetry_v1.json"),
        Artifact::new(kinds::TELEMETRY, fixture_telemetry_snapshot().encode()).to_bytes(),
    )
    .unwrap();

    use gestureprint_core::artifact::ArtifactFormat;
    let rd_model = train_fixture_rd_model();
    std::fs::write(fixture_path("rd_model_v1.json"), rd_model.save_artifact()).unwrap();
    std::fs::write(
        fixture_path("rd_model_v1.bin"),
        rd_model.save_artifact_with(ArtifactFormat::Binary),
    )
    .unwrap();

    let rd_telemetry = Artifact::new(kinds::TELEMETRY, fixture_rd_telemetry_snapshot().encode());
    std::fs::write(
        fixture_path("rd_telemetry_v1.json"),
        rd_telemetry.to_bytes(),
    )
    .unwrap();
    std::fs::write(
        fixture_path("rd_telemetry_v1.bin"),
        rd_telemetry.into_bytes_with(ArtifactFormat::Binary),
    )
    .unwrap();

    let gallery = Artifact::new(kinds::GALLERY, fixture_gallery().encode());
    std::fs::write(fixture_path("gallery_v1.json"), gallery.to_bytes()).unwrap();
    std::fs::write(
        fixture_path("gallery_v1.bin"),
        gallery.into_bytes_with(ArtifactFormat::Binary),
    )
    .unwrap();

    println!("regenerated fixtures under {}", fixture_path("").display());
}
