//! Shared deterministic fixtures for GesturePrint tests and benches.
//!
//! Before this crate existed, every integration test and benchmark re-built
//! the same "canonical capture" (user 0 performing ASL 'push' at 1.2 m in
//! an office) and the same tiny training dataset with copy-pasted seed
//! constants. This crate is the single source of truth for those fixtures;
//! changing a seed here changes it everywhere at once.
//!
//! Everything is seeded and pure: calling the same fixture twice yields
//! identical values, which the determinism tests rely on.

use gestureprint_core::TrainConfig;
use gp_datasets::{build, presets, BuildOptions, Dataset, Scale};
use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::{Performance, UserProfile};
use gp_pipeline::{LabeledSample, Preprocessor, PreprocessorConfig};
use gp_radar::{Backend, Environment, Frame, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed shared by every fixture profile (the "cohort" seed).
pub const PROFILE_SEED: u64 = 42;

/// The canonical gesture used by single-capture fixtures: ASL 'push'.
pub const CANONICAL_GESTURE: usize = 12;

/// The canonical radar-to-user distance in metres.
pub const CANONICAL_DISTANCE: f64 = 1.2;

/// The biometric profile of fixture user `user`, drawn from the shared
/// cohort seed so the same user id always denotes the same person.
pub fn profile(user: usize) -> UserProfile {
    UserProfile::generate(user, PROFILE_SEED)
}

/// One seeded performance: fixture user `user` performing ASL gesture
/// `gesture` at `distance` metres, with per-repetition variability drawn
/// from `seed`.
pub fn performance(user: usize, gesture: usize, distance: f64, seed: u64) -> Performance {
    let mut rng = StdRng::seed_from_u64(seed);
    Performance::new(
        &profile(user),
        GestureSet::Asl15,
        GestureId(gesture),
        distance,
        &mut rng,
    )
}

/// Captures one performance in an office scene with the geometric backend:
/// the standard test capture. Returns the ground-truth performance next to
/// the raw frames so tests can check segmentation against it.
pub fn capture(user: usize, gesture: usize, rep_seed: u64) -> (Performance, Vec<Frame>) {
    let perf = performance(user, gesture, CANONICAL_DISTANCE, rep_seed);
    let scene = Scene::for_performance(perf.clone(), Environment::Office, rep_seed);
    let mut sim = RadarSimulator::new(
        RadarConfig::default(),
        Backend::Geometric,
        rep_seed ^ 0xF00D,
    );
    let frames = sim.capture_scene(&scene);
    (perf, frames)
}

/// The canonical captured gesture: user 0, ASL 'push', 1.2 m, office.
pub fn capture_fixture() -> Vec<Frame> {
    let perf = performance(0, CANONICAL_GESTURE, CANONICAL_DISTANCE, 5);
    let scene = Scene::for_performance(perf, Environment::Office, 5);
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 5);
    sim.capture_scene(&scene)
}

/// A preprocessed, labeled sample derived from [`capture_fixture`].
///
/// # Panics
///
/// Panics if the canonical capture yields no segment (would indicate a
/// pipeline regression).
pub fn sample_fixture() -> LabeledSample {
    let frames = capture_fixture();
    let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
    let best = samples
        .into_iter()
        .max_by_key(|s| s.duration_frames)
        .expect("canonical capture must segment");
    LabeledSample::from_sample(best, CANONICAL_GESTURE, 0)
}

/// A small but learnable dataset: 3 users × 5 MTranSee gestures × 6
/// repetitions at 1.2 m. Big enough for end-to-end accuracy assertions,
/// small enough for tier-1.
pub fn tiny_dataset() -> Dataset {
    let spec = presets::mtranssee(Scale::Custom { users: 3, reps: 6 }, &[CANONICAL_DISTANCE]);
    build(&spec, &BuildOptions::default())
}

/// A short training schedule for tier-1 tests (10 epochs, defaults
/// otherwise).
pub fn quick_train() -> TrainConfig {
    TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = capture_fixture();
        let b = capture_fixture();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cloud, y.cloud);
        }
        assert_eq!(sample_fixture().cloud, sample_fixture().cloud);
    }

    #[test]
    fn capture_exposes_ground_truth() {
        let (perf, frames) = capture(0, CANONICAL_GESTURE, 1);
        assert!(frames.len() > 30);
        let (gs, ge) = perf.gesture_interval();
        assert!(gs < ge);
    }
}
