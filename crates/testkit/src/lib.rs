//! Shared deterministic fixtures for GesturePrint tests and benches.
//!
//! Before this crate existed, every integration test and benchmark re-built
//! the same "canonical capture" (user 0 performing ASL 'push' at 1.2 m in
//! an office) and the same tiny training dataset with copy-pasted seed
//! constants. This crate is the single source of truth for those fixtures;
//! changing a seed here changes it everywhere at once.
//!
//! Everything is seeded and pure: calling the same fixture twice yields
//! identical values, which the determinism tests rely on.

use gestureprint_core::{
    GesturePrint, GesturePrintConfig, IdentificationMode, ModelKind, TrainConfig,
};
use gp_datasets::{build, presets, BuildOptions, Dataset, DatasetSpec, Scale};
use gp_kinematics::gestures::{GestureId, GestureSet};
use gp_kinematics::performance::PerformanceConfig;
use gp_kinematics::{Performance, UserProfile};
use gp_models::features::FeatureConfig;
use gp_pipeline::{LabeledSample, Preprocessor, PreprocessorConfig};
use gp_pointcloud::{Point, PointCloud, Vec3};
use gp_radar::{Backend, Environment, Frame, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed shared by every fixture profile (the "cohort" seed).
pub const PROFILE_SEED: u64 = 42;

/// The canonical gesture used by single-capture fixtures: ASL 'push'.
pub const CANONICAL_GESTURE: usize = 12;

/// The canonical radar-to-user distance in metres.
pub const CANONICAL_DISTANCE: f64 = 1.2;

/// The biometric profile of fixture user `user`, drawn from the shared
/// cohort seed so the same user id always denotes the same person.
pub fn profile(user: usize) -> UserProfile {
    UserProfile::generate(user, PROFILE_SEED)
}

/// One seeded performance: fixture user `user` performing ASL gesture
/// `gesture` at `distance` metres, with per-repetition variability drawn
/// from `seed`.
pub fn performance(user: usize, gesture: usize, distance: f64, seed: u64) -> Performance {
    let mut rng = StdRng::seed_from_u64(seed);
    Performance::new(
        &profile(user),
        GestureSet::Asl15,
        GestureId(gesture),
        distance,
        &mut rng,
    )
}

/// Captures one performance in an office scene with the geometric backend:
/// the standard test capture. Returns the ground-truth performance next to
/// the raw frames so tests can check segmentation against it.
pub fn capture(user: usize, gesture: usize, rep_seed: u64) -> (Performance, Vec<Frame>) {
    let perf = performance(user, gesture, CANONICAL_DISTANCE, rep_seed);
    let scene = Scene::for_performance(perf.clone(), Environment::Office, rep_seed);
    let mut sim = RadarSimulator::new(
        RadarConfig::default(),
        Backend::Geometric,
        rep_seed ^ 0xF00D,
    );
    let frames = sim.capture_scene(&scene);
    (perf, frames)
}

/// The canonical captured gesture: user 0, ASL 'push', 1.2 m, office.
pub fn capture_fixture() -> Vec<Frame> {
    let perf = performance(0, CANONICAL_GESTURE, CANONICAL_DISTANCE, 5);
    let scene = Scene::for_performance(perf, Environment::Office, 5);
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 5);
    sim.capture_scene(&scene)
}

/// A preprocessed, labeled sample derived from [`capture_fixture`].
///
/// # Panics
///
/// Panics if the canonical capture yields no segment (would indicate a
/// pipeline regression).
pub fn sample_fixture() -> LabeledSample {
    let frames = capture_fixture();
    let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
    let best = samples
        .into_iter()
        .max_by_key(|s| s.duration_frames)
        .expect("canonical capture must segment");
    LabeledSample::from_sample(best, CANONICAL_GESTURE, 0)
}

/// A small but learnable dataset: 3 users × 5 MTranSee gestures × 6
/// repetitions at 1.2 m. Big enough for end-to-end accuracy assertions,
/// small enough for tier-1.
pub fn tiny_dataset() -> Dataset {
    let spec = presets::mtranssee(Scale::Custom { users: 3, reps: 6 }, &[CANONICAL_DISTANCE]);
    build(&spec, &BuildOptions::default())
}

/// A short training schedule for tier-1 tests (10 epochs, defaults
/// otherwise).
pub fn quick_train() -> TrainConfig {
    TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    }
}

/// Ground truth for one gesture inside a [`GestureStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTruth {
    /// Gesture id within the stream's gesture set.
    pub gesture: usize,
    /// Approximate first motion frame (10 fps).
    pub start_frame: usize,
    /// Approximate one-past-last motion frame.
    pub end_frame: usize,
}

/// A continuous multi-gesture radar stream for replay through the
/// serving path: frames with contiguous timestamps plus per-gesture
/// ground truth.
#[derive(Debug, Clone)]
pub struct GestureStream {
    /// The whole recording, timestamped at 10 fps from zero.
    pub frames: Vec<Frame>,
    /// One entry per performed gesture, in stream order.
    pub truth: Vec<StreamTruth>,
}

/// Simulates user `user` of `spec`'s cohort performing `gestures`
/// back-to-back (each with its natural idle lead-in/lead-out) as one
/// continuous capture in the spec's environment at its first anchor
/// distance. Deterministic in `(spec, user, gestures, seed)`.
pub fn stream_capture(
    spec: &DatasetSpec,
    user: usize,
    gestures: &[usize],
    seed: u64,
) -> GestureStream {
    let profile = UserProfile::generate(user, spec.user_seed);
    let distance = spec
        .distances
        .first()
        .copied()
        .unwrap_or(CANONICAL_DISTANCE);
    let mut frames: Vec<Frame> = Vec::new();
    let mut truth = Vec::new();
    for (k, &gesture) in gestures.iter().enumerate() {
        let rep_seed = seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(rep_seed);
        let config = PerformanceConfig {
            distance,
            ..PerformanceConfig::default()
        };
        let perf =
            Performance::with_config(&profile, spec.set, GestureId(gesture), config, &mut rng);
        let (gesture_start, gesture_end) = perf.gesture_interval();
        let scene = Scene::for_performance(perf, spec.environment, rep_seed ^ 0xE57);
        let mut sim =
            RadarSimulator::new(RadarConfig::default(), Backend::Geometric, rep_seed ^ 0x51B);
        let captured = sim.capture_scene(&scene);
        let base = frames.len();
        truth.push(StreamTruth {
            gesture,
            start_frame: base + (gesture_start * 10.0).floor() as usize,
            end_frame: base + (gesture_end * 10.0).ceil() as usize,
        });
        frames.extend(
            captured
                .into_iter()
                .enumerate()
                .map(|(i, f)| Frame::new((base + i) as f64 * 0.1, f.cloud)),
        );
    }
    GestureStream { frames, truth }
}

/// The canonical serving stream: fixture user 0 performing three ASL
/// gestures back-to-back in the office (the streaming counterpart of
/// [`capture_fixture`]).
pub fn stream_fixture() -> GestureStream {
    stream_capture(
        &presets::gestureprint(Environment::Office, Scale::Small),
        0,
        &[CANONICAL_GESTURE, 2, 7],
        11,
    )
}

/// A deliberately tiny 2-gesture × 2-user synthetic cohort (hand-built
/// clouds, no radar simulation): gesture controls the motion axis, user
/// controls lateral offset and Doppler magnitude. Learnable in
/// milliseconds — for executor/serving tests and benches that need *a*
/// trained system but not radar realism.
pub fn toy_labeled_samples(reps: usize) -> Vec<LabeledSample> {
    let mut out = Vec::new();
    for gesture in 0..2usize {
        for user in 0..2usize {
            for rep in 0..reps {
                let shift = if user == 0 { -0.3 } else { 0.3 };
                let cloud: PointCloud = (0..24)
                    .map(|i| {
                        let t = i as f64 * 0.3 + rep as f64 * 0.07;
                        let (dx, dz) = if gesture == 0 {
                            (t.sin() * 0.35, 0.02) // lateral sweep
                        } else {
                            (0.02, t.sin() * 0.35) // vertical sweep
                        };
                        Point::new(
                            Vec3::new(shift + dx, 1.2 + t.cos() * 0.1, 1.0 + dz),
                            (t * 1.3).sin() * (0.8 + user as f64 * 0.6),
                            14.0,
                        )
                    })
                    .collect();
                out.push(LabeledSample {
                    cloud: cloud.clone(),
                    frame_clouds: vec![cloud; 4],
                    duration_frames: 18 + 4 * user,
                    gesture,
                    user,
                });
            }
        }
    }
    out
}

/// Captures one performance as range-Doppler frames with the `gp-rd`
/// synthesizer — the RD counterpart of [`capture`]: same kinematic
/// ground truth, same seeding convention.
pub fn rd_capture(
    user: usize,
    gesture: usize,
    rep_seed: u64,
) -> (Performance, Vec<gp_rd::RdFrame>) {
    let perf = performance(user, gesture, CANONICAL_DISTANCE, rep_seed);
    let synth = gp_rd::RdSynthesizer::new(gp_rd::RdConfig::default(), rep_seed ^ 0xF00D);
    let frames = synth.synthesize(&perf);
    (perf, frames)
}

/// Captures, segments, and labels one RD performance: the dominant
/// detected segment of [`rd_capture`] as an [`gp_rd::RdLabeledSample`].
///
/// # Panics
///
/// Panics if RD segmentation finds no activity (would indicate a
/// synthesis or segmentation regression).
pub fn rd_sample(user: usize, gesture: usize, rep_seed: u64) -> gp_rd::RdLabeledSample {
    let (_, frames) = rd_capture(user, gesture, rep_seed);
    let seg = gp_rd::dominant_segment(&frames, &gp_rd::RdSegmentConfig::default())
        .expect("RD capture must segment");
    gp_rd::RdLabeledSample::from_segment(&frames, seg.start, seg.end, gesture, user)
}

/// The RD counterpart of [`toy_labeled_samples`]: a hand-built
/// 2-gesture × 2-user RD cohort (gesture controls the range band, user
/// controls the Doppler side and spread). Learnable in milliseconds.
pub fn toy_rd_samples(reps: usize) -> Vec<gp_rd::RdLabeledSample> {
    let cfg = gp_rd::RdConfig::default();
    let mut out = Vec::new();
    for gesture in 0..2usize {
        for user in 0..2usize {
            for rep in 0..reps {
                let d = if user == 0 { 4 } else { 12 };
                let r0 = if gesture == 0 { 10 } else { 36 };
                let frames: Vec<gp_rd::RdFrame> = (0..8)
                    .map(|i| {
                        let mut f = gp_rd::RdFrame::zeros(&cfg, i as f64 * 0.1);
                        let r = r0 + (rep + i) % 4;
                        f.power[d * cfg.range_bins + r] = 40.0 + rep as f64;
                        f.power[(d + 1) * cfg.range_bins + r] = 20.0 + user as f64 * 5.0;
                        f
                    })
                    .collect();
                out.push(gp_rd::RdLabeledSample {
                    frames,
                    duration_frames: 8,
                    gesture,
                    user,
                });
            }
        }
    }
    out
}

/// A short RD training schedule for tier-1 tests.
pub fn quick_rd_train() -> TrainConfig {
    TrainConfig {
        model: ModelKind::RdNet,
        epochs: 10,
        learning_rate: 5e-3,
        augment: None,
        ..TrainConfig::default()
    }
}

/// A range-Doppler [`GesturePrint`] trained on [`toy_rd_samples`] in
/// milliseconds — the RD counterpart of [`toy_system`].
pub fn toy_rd_system() -> GesturePrint {
    let samples = toy_rd_samples(4);
    let refs: Vec<&gp_rd::RdLabeledSample> = samples.iter().collect();
    GesturePrint::train_rd(
        &refs,
        2,
        2,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig {
                epochs: 8,
                ..quick_rd_train()
            },
            threads: 2,
        },
    )
}

/// A [`GesturePrint`] system trained on [`toy_labeled_samples`] in
/// milliseconds (2 gestures × 2 users, 8 epochs, serialized mode).
/// Predictions on real captures are arbitrary but deterministic.
pub fn toy_system() -> GesturePrint {
    let samples = toy_labeled_samples(4);
    let refs: Vec<&LabeledSample> = samples.iter().collect();
    GesturePrint::train(
        &refs,
        2,
        2,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig {
                model: ModelKind::GesIdNet,
                epochs: 8,
                augment: None,
                feature: FeatureConfig {
                    num_points: 24,
                    ..FeatureConfig::default()
                },
                ..TrainConfig::default()
            },
            threads: 2,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = capture_fixture();
        let b = capture_fixture();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cloud, y.cloud);
        }
        assert_eq!(sample_fixture().cloud, sample_fixture().cloud);
    }

    #[test]
    fn capture_exposes_ground_truth() {
        let (perf, frames) = capture(0, CANONICAL_GESTURE, 1);
        assert!(frames.len() > 30);
        let (gs, ge) = perf.gesture_interval();
        assert!(gs < ge);
    }

    #[test]
    fn stream_fixture_is_deterministic_and_contiguous() {
        let a = stream_fixture();
        let b = stream_fixture();
        assert_eq!(a.frames.len(), b.frames.len());
        for (x, y) in a.frames.iter().zip(&b.frames) {
            assert_eq!(x.cloud, y.cloud);
        }
        assert_eq!(a.truth.len(), 3);
        // Timestamps are re-based onto one 10 fps clock.
        for (i, f) in a.frames.iter().enumerate() {
            assert!((f.timestamp - i as f64 * 0.1).abs() < 1e-9);
        }
        // Truth intervals are ordered and in range.
        for w in a.truth.windows(2) {
            assert!(w[0].end_frame <= w[1].start_frame + 1);
        }
        assert!(a.truth.last().unwrap().end_frame <= a.frames.len());
    }

    #[test]
    fn toy_system_is_deterministic() {
        let samples = toy_labeled_samples(2);
        let a = toy_system();
        let b = toy_system();
        for s in &samples {
            assert_eq!(a.infer(s), b.infer(s));
        }
    }

    #[test]
    fn rd_fixtures_are_deterministic_and_segment() {
        let a = rd_sample(0, CANONICAL_GESTURE, 3);
        let b = rd_sample(0, CANONICAL_GESTURE, 3);
        assert_eq!(a, b);
        assert!(a.duration_frames >= 4);

        let samples = toy_rd_samples(2);
        let x = toy_rd_system();
        let y = toy_rd_system();
        for s in &samples {
            assert_eq!(x.infer_rd(s), y.infer_rd(s));
        }
    }
}
