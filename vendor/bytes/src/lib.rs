//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the surface `gp-nn::serialize` uses: `BytesMut` as a
//! growable little-endian writer, `Bytes` as an immutable byte buffer that
//! derefs to `[u8]`, the `Buf` cursor trait for `&[u8]`, and the `BufMut`
//! writer trait. Backed by a plain `Vec<u8>`; no shared-ownership tricks.

use core::ops::Deref;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer used to build a [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

/// Read cursor over a byte source; advancing consumes bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads a little-endian `u32`, advancing 4 bytes. Panics if short.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `f32`, advancing 4 bytes. Panics if short.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
        *self = rest;
        v
    }
}

/// Write sink for little-endian scalars.
pub trait BufMut {
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_f32() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 8);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slicing_through_deref() {
        let mut w = BytesMut::with_capacity(4);
        w.put_u32_le(7);
        let b = w.freeze();
        assert_eq!(&b[..2], &7u32.to_le_bytes()[..2]);
    }
}
