//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset `crates/bench` uses — `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros — on
//! top of `std::time::Instant`. Unlike the first stub, each benchmark is
//! measured as a set of samples, so the report carries a mean, a standard
//! deviation, and a Tukey-fence outlier count, and runs can be compared
//! against a saved baseline:
//!
//! Flags (after `cargo bench -- ...`):
//! - `--test`                  run every benchmark exactly once (CI smoke mode)
//! - `--save-baseline <path>`  merge this run's means into a JSON baseline file
//! - `--baseline <path>`       print each benchmark's delta vs a saved baseline
//! - `--regression-threshold <pct>`  with `--baseline`: exit non-zero if any
//!   benchmark's mean regressed by more than `pct` percent (CI gate)
//! - any other non-flag argument filters benchmarks by substring

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; accepted for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched tightly upstream).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Number of timed samples per benchmark (upstream defaults to 100; the
/// stub keeps the whole run inside a fixed wall-clock window instead).
const SAMPLE_COUNT: usize = 25;

/// Summary statistics over one benchmark's per-sample ns/iter values.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Mean ns/iter across samples.
    pub mean_ns: f64,
    /// Sample standard deviation (ns/iter).
    pub std_dev_ns: f64,
    /// Samples outside the Tukey fences (1.5 × IQR beyond the quartiles).
    pub outliers: usize,
    /// Number of samples measured.
    pub samples: usize,
}

impl SampleStats {
    /// Computes mean / standard deviation / Tukey outliers over
    /// per-sample ns/iter measurements.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn from_samples(samples: &[f64]) -> SampleStats {
        assert!(!samples.is_empty(), "no benchmark samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() > 1 {
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let quartile = |f: f64| -> f64 {
            let idx = (f * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        let (q1, q3) = (quartile(0.25), quartile(0.75));
        let iqr = q3 - q1;
        let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let outliers = sorted.iter().filter(|&&s| s < lo || s > hi).count();
        SampleStats {
            mean_ns: mean,
            std_dev_ns: var.sqrt(),
            outliers,
            samples: samples.len(),
        }
    }

    /// Relative standard deviation in percent.
    pub fn rsd_percent(&self) -> f64 {
        if self.mean_ns == 0.0 {
            0.0
        } else {
            100.0 * self.std_dev_ns / self.mean_ns
        }
    }
}

/// A saved baseline: benchmark id → mean ns/iter.
///
/// Serialised as a flat JSON object through `gp-codec` (the workspace's
/// real serialization layer); files written by the old hand-rolled
/// writer remain readable, since they are a subset of strict JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    entries: BTreeMap<String, f64>,
}

impl Baseline {
    /// Loads a baseline from a JSON file.
    pub fn load(path: &str) -> std::io::Result<Baseline> {
        let text = std::fs::read_to_string(path)?;
        Baseline::parse(&text).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed baseline JSON in {path}"),
            )
        })
    }

    /// Mean ns/iter recorded for `id`, if present.
    pub fn mean_ns(&self, id: &str) -> Option<f64> {
        self.entries.get(id).copied()
    }

    /// Records (or replaces) a benchmark's mean.
    pub fn record(&mut self, id: &str, mean_ns: f64) {
        self.entries.insert(id.to_string(), mean_ns);
    }

    /// Merges this run's entries into the file at `path`, keeping any
    /// benchmarks the run did not touch (each `criterion_group!` gets
    /// its own `Criterion`, so groups write incrementally).
    pub fn merge_into_file(&self, path: &str) -> std::io::Result<()> {
        // A missing file starts a fresh baseline, but an unreadable or
        // malformed one aborts the save: silently replacing it would
        // erase every benchmark this run did not re-measure.
        let mut merged = match Baseline::load(path) {
            Ok(existing) => existing,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
            Err(e) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("refusing to overwrite unreadable baseline {path}: {e}"),
                ))
            }
        };
        for (id, &mean) in &self.entries {
            merged.record(id, mean);
        }
        // `--save-baseline results/...` must work on a fresh clone where
        // the results directory does not exist yet.
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, merged.to_json())
    }

    /// Serialises as a flat JSON object (keys sorted, full `f64`
    /// precision via the gp-codec encoder).
    pub fn to_json(&self) -> String {
        let map: BTreeMap<String, gp_codec::Value> = self
            .entries
            .iter()
            .map(|(id, &mean)| (id.clone(), gp_codec::Value::Float(mean)))
            .collect();
        gp_codec::json::to_json(&gp_codec::Value::Map(map)).expect("benchmark means are finite")
    }

    /// Parses the flat `{"id": mean, ...}` object through the gp-codec
    /// strict decoder. Accepts everything [`Baseline::to_json`] writes
    /// plus files from the pre-gp-codec writer (pretty-printed, means
    /// formatted to one decimal).
    pub fn parse(text: &str) -> Option<Baseline> {
        let value = gp_codec::json::from_json(text).ok()?;
        let map = value.as_map().ok()?;
        let mut entries = BTreeMap::new();
        for (id, mean) in map {
            entries.insert(id.clone(), mean.as_f64().ok()?);
        }
        Some(Baseline { entries })
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measure: Duration,
    /// Comparison baseline (`--baseline <path>`).
    compare: Option<Baseline>,
    /// Where to merge this run's means (`--save-baseline <path>`).
    save_path: Option<String>,
    /// Means measured by this instance, pending the save-on-drop merge.
    results: Baseline,
    /// Regression gate (`--regression-threshold <pct>`): max allowed
    /// mean regression vs the baseline, in percent.
    fail_threshold: Option<f64>,
    /// Benchmarks that exceeded `fail_threshold`, reported on drop.
    regressions: Vec<String>,
    /// Whether drop exits the process on regressions (only when the
    /// gate was requested via CLI args, so tests can inspect
    /// [`Criterion::regression_failures`] safely).
    exit_on_regression: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut test_mode = false;
        let mut filter = None;
        let mut compare = None;
        let mut save_path = None;
        let mut fail_threshold = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--test" => test_mode = true,
                "--regression-threshold" => {
                    if let Some(pct) = args.get(i + 1) {
                        match pct.parse::<f64>() {
                            Ok(pct) => fail_threshold = Some(pct),
                            Err(_) => {
                                eprintln!("warning: bad --regression-threshold {pct}")
                            }
                        }
                        i += 1;
                    }
                }
                "--save-baseline" => {
                    if let Some(path) = args.get(i + 1) {
                        save_path = Some(path.clone());
                        i += 1;
                    }
                }
                "--baseline" => {
                    if let Some(path) = args.get(i + 1) {
                        match Baseline::load(path) {
                            Ok(b) => compare = Some(b),
                            Err(e) => eprintln!("warning: cannot load baseline {path}: {e}"),
                        }
                        i += 1;
                    }
                }
                s if s.starts_with('-') => {} // --bench and friends: ignore
                s => filter = Some(s.to_string()),
            }
            i += 1;
        }
        Criterion {
            test_mode,
            filter,
            compare,
            save_path,
            results: Baseline::default(),
            fail_threshold,
            regressions: Vec::new(),
            exit_on_regression: fail_threshold.is_some(),
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API parity with upstream; configuration already
    /// happens in [`Criterion::default`].
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, f);
    }

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measure: self.measure,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok (smoke)");
            return;
        }
        if bencher.samples_ns.is_empty() {
            return;
        }
        let stats = SampleStats::from_samples(&bencher.samples_ns);
        self.results.record(id, stats.mean_ns);
        let delta = match self.compare.as_ref().and_then(|b| b.mean_ns(id)) {
            Some(base) if base > 0.0 => {
                let pct = 100.0 * (stats.mean_ns - base) / base;
                if let Some(threshold) = self.fail_threshold {
                    if pct > threshold {
                        self.regressions.push(format!(
                            "{id}: {pct:+.1}% vs baseline (threshold +{threshold:.1}%)"
                        ));
                    }
                }
                format!("  Δ {pct:+.1}% vs baseline")
            }
            Some(_) => String::new(),
            None if self.compare.is_some() => "  (no baseline entry)".into(),
            None => String::new(),
        };
        println!(
            "bench {id:<40} {:>14.1} ns/iter ±{:.1}% ({} samples, {} outliers){delta}",
            stats.mean_ns,
            stats.rsd_percent(),
            stats.samples,
            stats.outliers,
        );
    }
}

impl Criterion {
    /// Benchmarks that regressed past `--regression-threshold` so far.
    pub fn regression_failures(&self) -> &[String] {
        &self.regressions
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Some(path) = &self.save_path {
            if let Err(e) = self.results.merge_into_file(path) {
                eprintln!("warning: cannot save baseline {path}: {e}");
            }
        }
        if !self.regressions.is_empty() {
            eprintln!("benchmark regression(s) past the threshold:");
            for r in &self.regressions {
                eprintln!("  {r}");
            }
            if self.exit_on_regression {
                // The regression gate is a CI failure; exiting here (the
                // group's Criterion drops after its benches ran) reports
                // all of this group's regressions first.
                std::process::exit(1);
            }
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub sizes runs by wall-clock, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run(&full, f);
        self
    }

    /// Ends the group (upstream emits summaries here; the stub prints
    /// per-benchmark lines eagerly).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    measure: Duration,
    /// ns/iter per timed sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over [`SAMPLE_COUNT`] samples (once in `--test`
    /// smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warmup: one call, also used to size the per-sample loop so the
        // whole benchmark stays inside the measurement window.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.measure.as_nanos() / SAMPLE_COUNT as u128 / once.as_nanos())
            .clamp(1, 1_000_000) as u64;
        for _ in 0..SAMPLE_COUNT {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (self.measure.as_nanos() / SAMPLE_COUNT as u128 / once.as_nanos())
            .clamp(1, 100_000) as u64;
        for _ in 0..SAMPLE_COUNT {
            let mut timed = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                timed += start.elapsed();
            }
            self.samples_ns
                .push(timed.as_nanos() as f64 / per_sample as f64);
        }
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet(test_mode: bool, filter: Option<&str>) -> Criterion {
        Criterion {
            test_mode,
            filter: filter.map(str::to_string),
            compare: None,
            save_path: None,
            results: Baseline::default(),
            fail_threshold: None,
            regressions: Vec::new(),
            exit_on_regression: false,
            measure: Duration::from_millis(1),
        }
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = quiet(true, None);
        let mut calls = 0;
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = quiet(true, Some("only_this"));
        let mut ran = false;
        c.benchmark_group("g")
            .bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = quiet(true, None);
        let mut total = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| total += x * 2, BatchSize::SmallInput)
        });
        assert_eq!(total, 42);
    }

    #[test]
    fn measured_runs_record_means() {
        let mut c = quiet(false, None);
        c.bench_function("tiny", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let mean = c.results.mean_ns("tiny").expect("mean recorded");
        assert!(mean > 0.0);
    }

    #[test]
    fn regression_threshold_flags_slowdowns_only() {
        let mut baseline = Baseline::default();
        // An absurdly fast baseline: any real measurement regresses.
        baseline.record("gate/slow", 0.001);
        // An absurdly slow baseline: any real measurement improves.
        baseline.record("gate/fast", 1e15);
        let mut c = quiet(false, None);
        c.compare = Some(baseline);
        c.fail_threshold = Some(25.0);
        c.benchmark_group("gate")
            .bench_function("slow", |b| b.iter(|| std::hint::black_box(1 + 1)))
            .bench_function("fast", |b| b.iter(|| std::hint::black_box(1 + 1)));
        let failures = c.regression_failures();
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("gate/slow"), "{failures:?}");
        // `exit_on_regression` is false for struct-built instances, so
        // dropping `c` must not kill the test process.
    }

    #[test]
    fn stats_on_constant_samples() {
        let stats = SampleStats::from_samples(&[5.0; 10]);
        assert_eq!(stats.mean_ns, 5.0);
        assert_eq!(stats.std_dev_ns, 0.0);
        assert_eq!(stats.outliers, 0);
        assert_eq!(stats.samples, 10);
        assert_eq!(stats.rsd_percent(), 0.0);
    }

    #[test]
    fn stats_flag_tukey_outliers() {
        // 20 well-spread samples (91..=110) plus one wild spike: only the
        // spike sits beyond the 1.5 × IQR fences.
        let mut samples: Vec<f64> = (91..=110).map(f64::from).collect();
        samples.push(1_000.0);
        let stats = SampleStats::from_samples(&samples);
        assert_eq!(stats.outliers, 1, "{stats:?}");
        assert!(stats.std_dev_ns > 0.0);
        assert!(stats.mean_ns > 100.0);
    }

    #[test]
    fn stats_variance_matches_hand_computation() {
        let stats = SampleStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert!((stats.mean_ns - 2.5).abs() < 1e-12);
        // Sample variance of 1..4 is 5/3.
        assert!((stats.std_dev_ns - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn baseline_json_round_trips() {
        let mut b = Baseline::default();
        b.record("dsp/fft_256", 1234.5);
        b.record("serve/stream_replay", 9.0);
        let parsed = Baseline::parse(&b.to_json()).expect("round trip");
        assert_eq!(parsed, b);
        assert_eq!(parsed.mean_ns("dsp/fft_256"), Some(1234.5));
        assert_eq!(parsed.mean_ns("missing"), None);
    }

    #[test]
    fn baseline_reads_pre_codec_files() {
        // The exact shape the old hand-rolled writer produced: pretty
        // indentation, one-decimal means, integer-looking values.
        let legacy = "{\n  \"dsp/fft_256\": 1234.5,\n  \"serve/stream_replay\": 9\n}";
        let parsed = Baseline::parse(legacy).expect("legacy format stays readable");
        assert_eq!(parsed.mean_ns("dsp/fft_256"), Some(1234.5));
        assert_eq!(parsed.mean_ns("serve/stream_replay"), Some(9.0));
    }

    #[test]
    fn baseline_rejects_malformed_json() {
        assert!(Baseline::parse("not json").is_none());
        assert!(Baseline::parse("{\"unterminated: 1}").is_none());
        assert_eq!(
            Baseline::parse("{}"),
            Some(Baseline::default()),
            "empty object is a valid empty baseline"
        );
    }

    #[test]
    fn baseline_merge_keeps_untouched_entries() {
        let dir = std::env::temp_dir().join(format!(
            "gp-criterion-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let path = path.to_str().unwrap();

        // `dir` is created above but the nested directory is not:
        // merge_into_file must create missing parents itself.
        let nested = dir.join("results").join("baseline.json");
        let mut fresh = Baseline::default();
        fresh.record("group_a/bench", 1.0);
        fresh.merge_into_file(nested.to_str().unwrap()).unwrap();
        assert!(nested.exists());

        let mut first = Baseline::default();
        first.record("group_a/bench", 100.0);
        first.merge_into_file(path).unwrap();

        let mut second = Baseline::default();
        second.record("group_b/bench", 200.0);
        second.merge_into_file(path).unwrap();

        let merged = Baseline::load(path).unwrap();
        assert_eq!(merged.mean_ns("group_a/bench"), Some(100.0));
        assert_eq!(merged.mean_ns("group_b/bench"), Some(200.0));

        // A corrupt baseline must abort the save rather than be replaced.
        std::fs::write(path, "not json at all").unwrap();
        let mut third = Baseline::default();
        third.record("group_c/bench", 300.0);
        assert!(third.merge_into_file(path).is_err());
        assert_eq!(std::fs::read_to_string(path).unwrap(), "not json at all");
        std::fs::remove_dir_all(&dir).ok();
    }
}
