//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset `crates/bench` uses — `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros — on
//! top of `std::time::Instant`. There is no statistical analysis: each
//! benchmark is warmed up briefly, then timed over a fixed wall-clock
//! window and reported as mean ns/iter.
//!
//! Flags (after `cargo bench -- ...`):
//! - `--test`   run every benchmark exactly once (CI smoke mode)
//! - any other non-flag argument filters benchmarks by substring

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; accepted for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched tightly upstream).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {} // --bench and friends: ignore
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API parity with upstream; configuration already
    /// happens in [`Criterion::default`].
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, f);
    }

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measure: self.measure,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok (smoke)");
        } else if bencher.iterations > 0 {
            let ns = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
            println!(
                "bench {id:<40} {ns:>14.1} ns/iter ({} iters)",
                bencher.iterations
            );
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub sizes runs by wall-clock, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run(&full, f);
        self
    }

    /// Ends the group (upstream emits summaries here; the stub prints
    /// per-benchmark lines eagerly).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    measure: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly (once in `--test` smoke mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iterations = 0;
            return;
        }
        // Warmup: one call, also used to size the timing loop.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = (self.measure.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = target;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.iterations = 0;
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = (self.measure.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut timed = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
        self.iterations = target;
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            measure: Duration::from_millis(1),
        };
        let mut calls = 0;
        c.bench_function("unit", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("only_this".into()),
            measure: Duration::from_millis(1),
        };
        let mut ran = false;
        c.benchmark_group("g")
            .bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            measure: Duration::from_millis(1),
        };
        let mut total = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| total += x * 2, BatchSize::SmallInput)
        });
        assert_eq!(total, 42);
    }
}
