//! Offline stand-in for the `serde` facade.
//!
//! Exposes the `Serialize` / `Deserialize` trait names and their derive
//! macros (which expand to nothing — see `vendor/serde_derive`). This is
//! enough for the workspace, which derives the traits as markers but never
//! calls a serializer; swap in crates.io `serde` to get real behaviour.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching the name of `serde::Serialize`.
pub trait Serialize {}

/// Marker trait matching the name of `serde::Deserialize`.
pub trait Deserialize<'de> {}
