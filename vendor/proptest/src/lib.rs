//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! - the [`proptest!`] macro with `#![proptest_config(...)]`, multiple
//!   `#[test] fn name(pat in strategy, ...) { .. }` items, and bodies that
//!   `return Ok(())` to skip a case
//! - [`prop_assert!`] / [`prop_assert_eq!`]
//! - range strategies (`0usize..6`, `-1e3f64..1e3`, inclusive variants),
//!   tuple strategies, [`Strategy::prop_map`], `prop::collection::vec`
//!   with either a fixed length or a length range, and [`any`]
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! its case index and the deterministic per-test seed, which is enough to
//! re-run it. Case generation is fully deterministic (seeded by a hash of
//! the test's name), so failures reproduce across runs and machines.

use rand::rngs::StdRng;

pub use rand::rngs::StdRng as __StdRng;
pub use rand::SeedableRng as __SeedableRng;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; tier-1 tests favour speed, and the
        // deterministic seeding means extra cases add little here.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::SampleRange::sample_from(self.clone(), rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::SampleRange::sample_from(self.clone(), rng)
            }
        }
    )*};
}
range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Strategy covering the whole domain of `Self`.
    fn arbitrary() -> AnyStrategy<Self>;
}

/// Full-domain strategy for a primitive; see [`any`].
pub struct AnyStrategy<T> {
    sample: fn(&mut StdRng) -> T,
}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.sample)(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy { sample: |rng| rand::RngCore::next_u64(rng) as $t }
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> AnyStrategy<bool> {
        AnyStrategy {
            sample: |rng| rand::RngCore::next_u64(rng) & 1 == 1,
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary() -> AnyStrategy<f64> {
        // Finite values only; tests do arithmetic on the draws.
        AnyStrategy {
            sample: |rng| {
                use rand::Rng;
                rng.gen_range(-1e9..1e9)
            },
        }
    }
}

/// Returns the full-domain strategy for `T`, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary()
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeBound, Strategy, VecStrategy};

        /// Strategy producing `Vec`s of `elem` draws with length drawn
        /// from `len` (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy, L: Into<SizeBound>>(elem: S, len: L) -> VecStrategy<S> {
            VecStrategy {
                elem,
                len: len.into(),
            }
        }
    }
}

/// Length specification for `prop::collection::vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeBound {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeBound {
    fn from(n: usize) -> Self {
        SizeBound { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeBound {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeBound {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeBound {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeBound {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by `prop::collection::vec`.
pub struct VecStrategy<S> {
    elem: S,
    len: SizeBound,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        use rand::Rng;
        let n = if self.len.hi - self.len.lo <= 1 {
            self.len.lo
        } else {
            rng.gen_range(self.len.lo..self.len.hi)
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Compile-time FNV-1a hash used to derive a per-test seed from its name.
#[must_use]
pub const fn fnv1a(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares deterministic property tests; see the crate docs for the
/// supported subset of upstream `proptest!` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            const SEED: u64 = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __rng = <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(
                    SEED ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{} (seed {SEED:#x}): {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), left, right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}
