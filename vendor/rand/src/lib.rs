//! Deterministic, dependency-free stand-in for the `rand` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the exact API subset it consumes:
//!
//! - [`rngs::StdRng`] — a xoshiro256++ generator (not the upstream ChaCha12;
//!   streams differ from crates.io `rand`, but are stable for this workspace,
//!   which is what the deterministic tests rely on)
//! - [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen_range`] over half-open and inclusive integer/float ranges
//! - [`Rng::gen_bool`]
//! - [`seq::SliceRandom::shuffle`]
//!
//! Everything is implemented from scratch; no code is copied from the
//! upstream crate.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the generator's stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps a raw word to a uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // Closed unit interval so the upper bound is reachable,
                // unlike the half-open `unit_f64`.
                let u = ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

// Integer sampling uses plain modulo reduction: the bias is O(span / 2^64),
// immeasurable for the small spans this workspace draws (< 2^32).
macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++,
    /// seeded through SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing in-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice using `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (RngCore::next_u64(rng) % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.5);
            assert!((-2.0..3.5).contains(&f));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn inclusive_float_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        // Degenerate range must return the bound exactly.
        assert_eq!(rng.gen_range(2.5..=2.5), 2.5);
        // Draws stay inside the closed interval.
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
