//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker —
//! no code takes `T: Serialize` bounds and all persistence goes through
//! `gp-nn`'s flat binary format — so the derives expand to nothing. When a
//! real serialisation backend is added (see ROADMAP open items) these become
//! the seam to swap in crates.io `serde`.

use proc_macro::TokenStream;

/// Expands to nothing; accepted anywhere crates.io `#[derive(Serialize)]` is.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted anywhere crates.io `#[derive(Deserialize)]` is.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
