//! Workspace-level property tests on cross-crate invariants.

use gestureprint::pipeline::{Preprocessor, PreprocessorConfig};
use gestureprint::radar::RadarConfig;
use gp_testkit::{capture, CANONICAL_GESTURE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (user, gesture, seed) combination yields a capture whose
    /// preprocessed clouds are physically plausible: near the user,
    /// within Doppler limits, with sane SNR.
    #[test]
    fn preprocessed_clouds_are_physical(
        user in 0usize..6,
        gesture in 0usize..15,
        seed in 0u64..500,
    ) {
        let (_, frames) = capture(user, gesture, seed);
        let vmax = RadarConfig::default().max_velocity();
        let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
        for s in &samples {
            prop_assert!(!s.cloud.is_empty());
            for p in s.cloud.iter() {
                prop_assert!(p.doppler.abs() <= vmax + 1e-9, "doppler {}", p.doppler);
                prop_assert!(p.snr > 0.0);
                prop_assert!(p.position.y > 0.0 && p.position.y < 3.5, "y {}", p.position.y);
                prop_assert!(p.position.z > -0.5 && p.position.z < 2.5, "z {}", p.position.z);
            }
            prop_assert!(s.duration_frames >= 5, "suspiciously short segment");
            prop_assert_eq!(s.frame_clouds.len(), s.duration_frames);
        }
    }

    /// The same profile produces overlapping clouds across repetitions;
    /// different users' clouds differ more than one user's repetitions
    /// on average (the §III premise, as a property).
    #[test]
    fn identity_signal_survives_pipeline(seed in 0u64..40) {
        let pre = Preprocessor::new(PreprocessorConfig::default());
        let best_cloud = |user: usize, rep: u64| {
            let (_, frames) = capture(user, CANONICAL_GESTURE, seed * 1000 + rep);
            pre.process(&frames)
                .into_iter()
                .max_by_key(|s| s.duration_frames)
                .map(|s| s.cloud)
        };
        let (Some(a1), Some(a2), Some(b1)) = (best_cloud(0, 1), best_cloud(0, 2), best_cloud(5, 1)) else {
            // Occasional segmentation miss is allowed; skip the case.
            return Ok(());
        };
        let same = gestureprint::pointcloud::metrics::chamfer(&a1, &a2);
        let cross = gestureprint::pointcloud::metrics::chamfer(&a1, &b1);
        // Not universally true per draw, but holds overwhelmingly; allow
        // tolerance by requiring cross > 0.6 * same rather than strict.
        prop_assert!(cross > 0.6 * same, "cross {cross} vs same {same}");
    }
}
