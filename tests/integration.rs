//! Cross-crate integration tests: the full path from kinematics through
//! the radar simulator, preprocessing, training and evaluation.

use gestureprint::core::{
    classification_report, train_classifier, GesturePrint, GesturePrintConfig, IdentificationMode,
    ModelKind, TrainConfig,
};
use gestureprint::eval::split::train_test_split;
use gestureprint::pipeline::LabeledSample;
use gp_testkit::{quick_train, tiny_dataset};

#[test]
fn dataset_to_system_round_trip() {
    let ds = tiny_dataset();
    assert!(
        ds.samples.len() >= 70,
        "dataset too small: {}",
        ds.samples.len()
    );
    let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
    let (tr, te) = train_test_split(samples.len(), 0.2, 3);
    let train: Vec<&LabeledSample> = tr.iter().map(|&i| samples[i]).collect();
    let test: Vec<&LabeledSample> = te.iter().map(|&i| samples[i]).collect();

    // Parallel mode: at this tiny scale the per-gesture identifiers of
    // serialized mode would have ~14 training samples each; the parallel
    // identifier pools all gestures and is the right fit (the mode
    // comparison at realistic scale lives in tab02_overall).
    let system = GesturePrint::train(
        &train,
        5,
        3,
        &GesturePrintConfig {
            mode: IdentificationMode::Parallel,
            train: TrainConfig {
                epochs: 14,
                ..quick_train()
            },
            threads: 0,
        },
    );
    let mut g_ok = 0;
    let mut u_ok = 0;
    for s in &test {
        let out = system.infer(s);
        g_ok += (out.gesture == s.gesture) as usize;
        u_ok += (out.user == s.user) as usize;
    }
    let gra = g_ok as f64 / test.len() as f64;
    let uia = u_ok as f64 / test.len() as f64;
    assert!(gra > 0.7, "end-to-end GRA too low: {gra}");
    assert!(uia > 0.5, "end-to-end UIA too low: {uia}");
}

#[test]
fn all_architectures_beat_chance_on_gestures() {
    let ds = tiny_dataset();
    let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
    let (tr, te) = train_test_split(samples.len(), 0.2, 5);
    let train: Vec<&LabeledSample> = tr.iter().map(|&i| samples[i]).collect();
    let test: Vec<&LabeledSample> = te.iter().map(|&i| samples[i]).collect();
    let gr_train: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.gesture)).collect();
    let gr_test: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.gesture)).collect();
    let chance = 1.0 / 5.0;
    for kind in [
        ModelKind::GesIdNet,
        ModelKind::GesIdNetNoFusion,
        ModelKind::PointNet,
        ModelKind::ProfileCnn,
        ModelKind::Lstm,
    ] {
        let model = train_classifier(
            &gr_train,
            5,
            &TrainConfig {
                model: kind,
                ..quick_train()
            },
        );
        let report = classification_report(&model, &gr_test);
        assert!(
            report.accuracy > 2.0 * chance,
            "{} accuracy {} barely beats chance",
            kind.name(),
            report.accuracy
        );
    }
}

#[test]
fn deterministic_end_to_end() {
    // Same seeds ⇒ identical dataset, training, and predictions.
    let a = tiny_dataset();
    let b = tiny_dataset();
    assert_eq!(a.samples.len(), b.samples.len());
    let sa: Vec<&LabeledSample> = a.samples.iter().map(|s| &s.labeled).collect();
    let sb: Vec<&LabeledSample> = b.samples.iter().map(|s| &s.labeled).collect();
    let pa: Vec<(&LabeledSample, usize)> = sa.iter().map(|s| (*s, s.gesture)).collect();
    let pb: Vec<(&LabeledSample, usize)> = sb.iter().map(|s| (*s, s.gesture)).collect();
    let cfg = TrainConfig {
        epochs: 3,
        ..quick_train()
    };
    let ma = train_classifier(&pa, 5, &cfg);
    let mb = train_classifier(&pb, 5, &cfg);
    for (x, y) in sa.iter().zip(sb.iter()) {
        assert_eq!(ma.probabilities(x), mb.probabilities(y));
    }
}

#[test]
fn report_metrics_are_coherent() {
    let ds = tiny_dataset();
    let samples: Vec<&LabeledSample> = ds.samples.iter().map(|s| &s.labeled).collect();
    let (tr, te) = train_test_split(samples.len(), 0.25, 9);
    let train: Vec<&LabeledSample> = tr.iter().map(|&i| samples[i]).collect();
    let test: Vec<&LabeledSample> = te.iter().map(|&i| samples[i]).collect();
    let pairs: Vec<(&LabeledSample, usize)> = train.iter().map(|s| (*s, s.user)).collect();
    let model = train_classifier(&pairs, 3, &quick_train());
    let test_pairs: Vec<(&LabeledSample, usize)> = test.iter().map(|s| (*s, s.user)).collect();
    let r = classification_report(&model, &test_pairs);
    assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0);
    assert!(r.macro_auc >= 0.0 && r.macro_auc <= 1.0);
    assert!(r.eer >= 0.0 && r.eer <= 1.0);
    // Strong AUC should coincide with low EER on a learnable task.
    if r.macro_auc > 0.95 {
        assert!(r.eer < 0.2, "auc {} but eer {}", r.macro_auc, r.eer);
    }
    for p in &r.probabilities {
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }
}
