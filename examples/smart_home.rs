//! Smart-home scenario (paper Fig. 1): personalised gesture commands.
//!
//! Two household members share a gesture vocabulary, but the *meaning* of
//! each gesture is personalised: the same swipe opens Alice's playlist
//! or Bob's. This is exactly the capability user identification adds to
//! a gesture recognition system.
//!
//! ```sh
//! cargo run --release --example smart_home
//! ```

use gestureprint::core::{GesturePrint, GesturePrintConfig, IdentificationMode, TrainConfig};
use gestureprint::datasets::{build, presets, BuildOptions, Scale};
use gestureprint::kinematics::gestures::{GestureId, GestureSet};

/// The household's personalised command table.
fn command(user: usize, gesture: usize) -> &'static str {
    match (user, gesture) {
        (0, 0) => "Alice: play jazz playlist",
        (0, 1) => "Alice: dim living-room lights",
        (0, 2) => "Alice: set thermostat to 21 °C",
        (1, 0) => "Bob: play rock playlist",
        (1, 1) => "Bob: turn lights to full",
        (1, 2) => "Bob: set thermostat to 19 °C",
        _ => "unmapped command",
    }
}

fn main() {
    // Household of 2, mTransSee-style command gestures, home environment.
    let spec = presets::mtranssee(Scale::Custom { users: 2, reps: 10 }, &[1.2]);
    let dataset = build(&spec, &BuildOptions::default());
    println!("{}", dataset.summary());

    let samples: Vec<_> = dataset.samples.iter().map(|s| &s.labeled).collect();
    // Hold out the last 2 repetitions of each (user, gesture) cell.
    let train: Vec<_> = dataset
        .samples
        .iter()
        .filter(|s| s.rep < 8)
        .map(|s| &s.labeled)
        .collect();
    let test: Vec<_> = dataset
        .samples
        .iter()
        .filter(|s| s.rep >= 8)
        .map(|s| &s.labeled)
        .collect();
    assert_eq!(train.len() + test.len(), samples.len());

    println!(
        "training the household controller on {} samples...",
        train.len()
    );
    let system = GesturePrint::train(
        &train,
        spec.set.gesture_count(),
        spec.users,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig {
                epochs: 14,
                ..TrainConfig::default()
            },
            threads: 0,
        },
    );

    // A deployed controller restarts: reload the trained system from
    // its artifact bytes (in a real deployment, from disk) and serve
    // the household with identical behaviour.
    let bytes = system.save_artifact();
    let system = GesturePrint::load_artifact(&bytes).expect("controller state reloads");
    println!(
        "controller state persisted and reloaded ({} bytes, schema-versioned)",
        bytes.len()
    );

    println!("\nincoming gestures:");
    let mut correct = 0;
    for sample in &test {
        let out = system.infer(sample);
        let fired = command(out.user, out.gesture);
        let intended = command(sample.user, sample.gesture);
        let ok = fired == intended;
        correct += ok as usize;
        if sample.gesture < 3 {
            println!(
                "  '{}' by user {} → {fired} {}",
                GestureSet::MTransSee5.gesture_name(GestureId(sample.gesture)),
                sample.user,
                if ok {
                    "✓".to_owned()
                } else {
                    format!("✗ (wanted: {intended})")
                }
            );
        }
    }
    println!(
        "\npersonalised commands dispatched correctly: {correct}/{}",
        test.len()
    );
}
