//! Quickstart: simulate a small multi-user gesture dataset, train the
//! GesturePrint system, and run end-to-end inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gestureprint::core::{GesturePrint, GesturePrintConfig, IdentificationMode, TrainConfig};
use gestureprint::datasets::{build, presets, BuildOptions, Scale};
use gestureprint::eval::split::train_test_split;
use gestureprint::kinematics::gestures::GestureSet;
use gestureprint::radar::Environment;

fn main() {
    // 1. Simulate: 4 users × 15 ASL gestures × 5 repetitions in an
    //    office, captured end-to-end through the FMCW radar simulator
    //    and the preprocessing pipeline.
    let spec = presets::gestureprint(Environment::Office, Scale::Custom { users: 4, reps: 5 });
    let dataset = build(&spec, &BuildOptions::default());
    println!("{}", dataset.summary());

    // 2. Split 80/20 and train the full system (gesture recogniser +
    //    per-gesture user identifiers, the paper's serialized mode).
    let samples: Vec<_> = dataset.samples.iter().map(|s| &s.labeled).collect();
    let (train_idx, test_idx) = train_test_split(samples.len(), 0.2, 7);
    let train: Vec<_> = train_idx.iter().map(|&i| samples[i]).collect();
    let test: Vec<_> = test_idx.iter().map(|&i| samples[i]).collect();

    println!(
        "training on {} samples (this runs on the CPU)...",
        train.len()
    );
    let system = GesturePrint::train(
        &train,
        spec.set.gesture_count(),
        spec.users,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig {
                epochs: 12,
                ..TrainConfig::default()
            },
            threads: 0,
        },
    );

    // 3. Infer: every test sample yields a (gesture, user) pair.
    let mut gesture_hits = 0;
    let mut user_hits = 0;
    for sample in &test {
        let out = system.infer(sample);
        gesture_hits += (out.gesture == sample.gesture) as usize;
        user_hits += (out.user == sample.user) as usize;
    }
    println!(
        "test gestures recognised: {gesture_hits}/{} | users identified: {user_hits}/{}",
        test.len(),
        test.len()
    );

    // 4. Persist and reload: the whole two-stage system (gesture model,
    //    per-gesture identifiers, feature config) travels as ONE
    //    self-describing artifact — no architecture arguments needed at
    //    load time, and predictions are bit-identical.
    let bytes = system.save_artifact();
    let restored = GesturePrint::load_artifact(&bytes).expect("artifact reloads");
    assert!(
        test.iter().all(|s| system.infer(s) == restored.infer(s)),
        "reloaded system must predict identically"
    );
    println!(
        "artifact round trip: {} bytes → {} gestures × {} users, predictions identical",
        bytes.len(),
        restored.gestures(),
        restored.users()
    );

    // 5. Inspect one inference in detail.
    let sample = test[0];
    let out = system.infer(sample);
    println!(
        "\nsample: true gesture '{}' by user {} → predicted '{}' by user {}",
        GestureSet::Asl15.gesture_name(gestureprint::kinematics::gestures::GestureId(
            sample.gesture
        )),
        sample.user,
        GestureSet::Asl15.gesture_name(gestureprint::kinematics::gestures::GestureId(out.gesture)),
        out.user,
    );
}
