//! Radar inspector: watch the FMCW signal chain turn a gesture into
//! point clouds, frame by frame.
//!
//! Runs both simulator backends on the same performance and prints an
//! ASCII range–time intensity sketch plus per-frame point counts — a
//! debugging view of everything below the classifier.
//!
//! ```sh
//! cargo run --release --example radar_inspector
//! ```

use gestureprint::kinematics::gestures::{GestureId, GestureSet};
use gestureprint::kinematics::{Performance, UserProfile};
use gestureprint::pipeline::{Preprocessor, PreprocessorConfig, Segmenter};
use gestureprint::radar::{Backend, Environment, RadarConfig, RadarSimulator, Scene};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = UserProfile::generate(3, 42);
    let mut rng = StdRng::seed_from_u64(9);
    let perf = Performance::new(&profile, GestureSet::Asl15, GestureId(14), 1.2, &mut rng);
    let (gs, ge) = perf.gesture_interval();
    println!(
        "user {} performs '{}' at 1.2 m (motion {:.1}–{:.1} s, speed factor {:.2})",
        profile.user_id,
        perf.gesture_name(),
        gs,
        ge,
        profile.speed_factor
    );

    let scene = Scene::for_performance(perf, Environment::Office, 9);
    let mut sim = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 9);
    let frames = sim.capture_scene(&scene);

    // ASCII range–time sketch: rows = frames, columns = range bins.
    println!("\nrange–time point map (each column ≈ 0.2 m of range):");
    for f in &frames {
        let mut lane = [0u8; 24];
        for p in f.cloud.iter() {
            let r = p.position.norm();
            let bin = ((r / 0.2) as usize).min(lane.len() - 1);
            lane[bin] = lane[bin].saturating_add(1);
        }
        let row: String = lane
            .iter()
            .map(|&n| match n {
                0 => ' ',
                1 => '.',
                2..=3 => 'o',
                _ => '#',
            })
            .collect();
        println!("t={:>4.1}s |{row}| {:>2} pts", f.timestamp, f.len());
    }

    let segments = Segmenter::default().segment(&frames);
    println!("\nsegments found: {segments:?}");
    let samples = Preprocessor::new(PreprocessorConfig::default()).process(&frames);
    for s in &samples {
        let (lo, hi) = s.cloud.bounding_box().expect("non-empty");
        println!(
            "gesture cloud: {} points over {} frames; extent {:.2}×{:.2}×{:.2} m",
            s.cloud.len(),
            s.duration_frames,
            hi.x - lo.x,
            hi.y - lo.y,
            hi.z - lo.z
        );
    }

    // Compare the reference signal-chain backend on one mid-gesture frame.
    let scene2 = scene.clone();
    let mid_t = (gs + ge) / 2.0;
    let scatterers = scene2.scatterers_at(mid_t);
    let mut chain = RadarSimulator::new(RadarConfig::default(), Backend::SignalChain, 9);
    let chain_frame = chain.simulate_frame(&scatterers, mid_t);
    let mut geo = RadarSimulator::new(RadarConfig::default(), Backend::Geometric, 9);
    let geo_frame = geo.simulate_frame(&scatterers, mid_t);
    println!(
        "\nmid-gesture frame: signal chain {} points vs geometric {} points",
        chain_frame.len(),
        geo_frame.len()
    );
    println!(
        "(the full chain synthesises {}×{}×{} IF samples and runs range/Doppler FFTs + CFAR)",
        RadarConfig::default().virtual_antennas(),
        RadarConfig::default().chirps_per_frame,
        RadarConfig::default().samples_per_chirp,
    );
}
