//! Socket-front serving demo: radar streams arrive over real loopback
//! TCP connections instead of in-process calls.
//!
//! Spawns a `gp-net` server (reactor thread + `gp-serve` engine with
//! per-session admission budgets), then connects a handful of
//! well-behaved clients that replay the capture fixture paced at 20×
//! real time — plus one greedy client that bursts its whole stream at
//! once and gets most of it shed at its own token bucket. Each client
//! prints the results it received over the wire and the exact admission
//! ledger the server hands back in the `Bye` message.
//!
//! ```sh
//! cargo run --release --example socket_serve
//! ```
//!
//! `GP_SOCKET_SESSIONS` overrides the number of well-behaved clients.

use gestureprint::serve::{AdmissionConfig, ServeConfig, ServeEngine};
use gp_net::{NetClient, NetConfig, NetListener, NetServer};
use gp_testkit::{stream_fixture, toy_system};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_FRAME: usize = 1 << 20;
/// Paced replay rate for the polite clients: the fixture records at
/// 10 fps; 20× real time keeps the demo snappy.
const REPLAY_FPS: f64 = 200.0;

fn main() {
    let sessions: usize = std::env::var("GP_SOCKET_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let stream = Arc::new(stream_fixture());

    // Per-session token bucket: plenty for a paced 200 fps replay,
    // binding for a client that bursts the entire stream at once.
    let budget = AdmissionConfig::new(400.0, 50.0);
    let engine = Arc::new(ServeEngine::new(
        toy_system(),
        ServeConfig {
            admission: Some(budget),
            ..ServeConfig::default()
        },
    ));
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let server =
        NetServer::spawn(engine.clone(), listener, NetConfig::default()).expect("spawn server");
    let addr = server.local_addr().expect("tcp address");
    println!(
        "gp-net server on {addr}: {sessions} paced clients + 1 greedy client, \
         budget {:.0} fps (burst {:.0})\n",
        400.0, 50.0
    );

    // Polite clients: paced replay, results read as they stream in.
    let paced: Vec<_> = (0..sessions)
        .map(|k| {
            let stream = stream.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
                let session = client.session();
                let start = Instant::now();
                let interval = Duration::from_secs_f64(1.0 / REPLAY_FPS);
                let mut live = Vec::new();
                for (i, frame) in stream.frames.iter().enumerate() {
                    if let Some(wait) =
                        (start + interval * i as u32).checked_duration_since(Instant::now())
                    {
                        std::thread::sleep(wait);
                    }
                    client.send_frame(frame).expect("send frame");
                    live.extend(client.try_recv_results().expect("recv"));
                }
                let report = client.close().expect("graceful close");
                (k, session, live, report)
            })
        })
        .collect();

    // The greedy client: no pacing, the whole stream in one burst.
    let greedy = {
        let stream = stream.clone();
        std::thread::spawn(move || {
            let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
            let session = client.session();
            for frame in &stream.frames {
                client.send_frame(frame).expect("send frame");
            }
            (session, client.close().expect("graceful close"))
        })
    };

    for handle in paced {
        let (k, session, live, report) = handle.join().expect("paced client");
        println!("client {k} (session {session}):");
        let streamed_live = live.len();
        let mut results = live;
        results.extend(report.results.iter().cloned());
        results.sort_by_key(|r| r.seq);
        for r in &results {
            println!(
                "  frames [{:>3}, {:>3}) → gesture {} user {} ({:>7} µs)",
                r.start, r.end, r.gesture, r.user, r.latency_us
            );
        }
        let l = &report.ledger;
        println!(
            "  ledger: {} admitted, {} shed, {} results ({streamed_live} streamed live)",
            l.admitted,
            l.shed_budget + l.shed_capacity,
            l.results,
        );
    }

    let (session, report) = greedy.join().expect("greedy client");
    let l = &report.ledger;
    println!(
        "\ngreedy client (session {session}): sent {} frames unpaced → \
         {} admitted, {} shed at its own budget, {} results",
        stream.frames.len(),
        l.admitted,
        l.shed_budget,
        l.results,
    );

    // Live observability over the same wire: one more connection asks
    // the server for its telemetry snapshot — per-stage latency
    // histograms, pool utilization, net.* counters — and renders the
    // final breakdown table from it.
    let mut observer = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect observer");
    let snapshot = observer.query_stats().expect("stats over the wire");
    observer.close().expect("close observer");
    println!("\nper-stage latency breakdown (queried over the socket):");
    print!("{}", snapshot.render_table("serve.stage."));

    let net = server.stats();
    server.shutdown();
    println!(
        "\nserver: {} connections, {} frames decoded, {} protocol errors; \
         the greedy client's overflow was shed at its bucket, not at its neighbours'",
        net.accepted, net.decoded_frames, net.protocol_errors,
    );
}
