//! Streaming serving demo: many concurrent simulated users replay live
//! radar streams through the `gp-serve` engine.
//!
//! Trains a GesturePrint system on the mTransSee tiny cohort, then opens
//! 8 concurrent sessions (driven on a `gp-runtime` worker pool, one
//! driver per session) replaying multi-gesture recordings frame-by-frame,
//! *paced* at a fixed frame rate with deterministic jitter (20× real
//! time) so the latency numbers are steady-state rather than burst.
//! Segments are detected online, micro-batched across sessions, and
//! classified (gesture + user) on the work-stealing worker pool. Prints
//! per-session predictions against ground truth plus aggregate
//! frames/sec and p50/p99 segment-to-result latency.
//!
//! Serving configuration (preprocessor included) comes from
//! `gp_bench::serve_config`, the single source shared with the serve
//! bench, so segmentation parameters cannot drift between the two.
//!
//! ```sh
//! cargo run --release --example streaming_serve
//! ```

use gestureprint::core::{GesturePrint, GesturePrintConfig, IdentificationMode};
use gestureprint::serve::ServeEngine;
use gp_bench::{drive_sessions, serve_config, ReplayPacer};
use gp_testkit::{quick_train, stream_capture, tiny_dataset, GestureStream};

const SESSIONS: usize = 8;
const GESTURES_PER_SESSION: usize = 3;
/// Replay rate: the simulated radar records at 10 fps; replaying at 20×
/// real time keeps the demo snappy while still pacing the stream.
const REPLAY_FPS: f64 = 200.0;

fn main() {
    // 1. Train on the shared tiny cohort: 3 users × 5 mTransSee gestures.
    let dataset = tiny_dataset();
    println!("{}", dataset.summary());
    let samples: Vec<_> = dataset.samples.iter().map(|s| &s.labeled).collect();
    println!("training GesturePrint on {} samples...", samples.len());
    let system = GesturePrint::train(
        &samples,
        dataset.spec.set.gesture_count(),
        dataset.spec.users,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: quick_train(),
            threads: 0,
        },
    );

    // 2. Simulate one continuous multi-gesture recording per session,
    //    performed by the same cohort the system was trained on.
    let gesture_count = dataset.spec.set.gesture_count();
    let streams: Vec<(usize, GestureStream)> = (0..SESSIONS)
        .map(|s| {
            let user = s % dataset.spec.users;
            let gestures: Vec<usize> = (0..GESTURES_PER_SESSION)
                .map(|k| (s + 2 * k) % gesture_count)
                .collect();
            (
                user,
                stream_capture(&dataset.spec, user, &gestures, 0xA11CE + s as u64),
            )
        })
        .collect();
    let total_frames: usize = streams.iter().map(|(_, s)| s.frames.len()).sum();

    // 3. Serve: one pool driver per session paces frames onto the
    //    engine at REPLAY_FPS (deterministic ±10% jitter); the engine
    //    micro-batches ready segments across sessions onto the worker
    //    pool.
    let engine = ServeEngine::new(system, serve_config(0, 8));
    let sessions: Vec<_> = (0..SESSIONS).map(|_| engine.open_session()).collect();
    println!(
        "replaying {SESSIONS} concurrent sessions ({total_frames} frames, paced \
         {REPLAY_FPS:.0} fps) on {} workers, micro-batch {}...\n",
        engine.workers(),
        engine.config().max_batch,
    );
    let start = std::time::Instant::now();
    let session_streams: Vec<_> = sessions
        .iter()
        .zip(&streams)
        .map(|(&session, (_, stream))| (session, stream))
        .collect();
    drive_sessions(
        &engine,
        &session_streams,
        Some(ReplayPacer::new(REPLAY_FPS, 0.1, 0xA11CE)),
    );
    let events = engine.drain();
    let elapsed = start.elapsed();

    // 4. Per-session results vs ground truth.
    let mut gesture_hits = 0usize;
    let mut user_hits = 0usize;
    let mut scored = 0usize;
    for (k, &session) in sessions.iter().enumerate() {
        let (user, stream) = &streams[k];
        println!("{session} (user {user}):");
        for event in events.iter().filter(|e| e.session == session) {
            // Ground truth: the performed gesture whose interval overlaps
            // the detected segment, if any.
            let truth = stream
                .truth
                .iter()
                .find(|t| event.segment.start < t.end_frame && t.start_frame < event.segment.end);
            let inference = &event.inference;
            let verdict = match truth {
                Some(t) => {
                    scored += 1;
                    gesture_hits += (inference.gesture == t.gesture) as usize;
                    user_hits += (inference.user == *user) as usize;
                    format!(
                        "truth gesture {} → {}",
                        t.gesture,
                        if inference.gesture == t.gesture && inference.user == *user {
                            "both correct"
                        } else if inference.gesture == t.gesture {
                            "gesture correct"
                        } else if inference.user == *user {
                            "user correct"
                        } else {
                            "both wrong"
                        }
                    )
                }
                None => "no overlapping ground truth".to_string(),
            };
            println!(
                "  frames [{:>3}, {:>3}) → gesture {} user {} ({:>9.2?})  [{verdict}]",
                event.segment.start,
                event.segment.end,
                inference.gesture,
                inference.user,
                event.latency,
            );
        }
    }

    // 5. Aggregate serving numbers.
    let stats = engine.stats();
    let fps = stats.total_frames() as f64 / elapsed.as_secs_f64();
    println!(
        "\naggregate: {} frames, {} segments ({} dropped by noise canceling), \
         {} results in {elapsed:.2?}",
        stats.total_frames(),
        stats.total_segments(),
        stats.total_segments() - stats.total_results(),
        stats.total_results(),
    );
    println!(
        "throughput {fps:.0} frames/s | segment-to-result latency p50 {:.2?} p99 {:.2?}",
        stats.latency_percentile(50.0).unwrap_or_default(),
        stats.latency_percentile(99.0).unwrap_or_default(),
    );
    println!(
        "accuracy on scored segments: gestures {gesture_hits}/{scored}, users {user_hits}/{scored}",
    );

    // 6. Where the time went: the telemetry registry's per-stage
    //    latency breakdown of the end-to-end numbers above.
    if let Some(snapshot) = engine.telemetry_snapshot() {
        println!("\nper-stage latency breakdown:");
        print!("{}", snapshot.render_table("serve.stage."));
    }
}
