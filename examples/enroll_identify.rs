//! Identity over the socket front: enrollment, calibration, and
//! open-set identification against a persistent gallery.
//!
//! Spawns a `gp-net` server whose engine carries a `gp-store`
//! [`IdentityStore`], then walks the full identity lifecycle over real
//! loopback TCP:
//!
//! 1. **Enroll** — two users stream one gesture recording each in
//!    enrollment mode; every completed segment's embedding joins their
//!    gallery template.
//! 2. **Calibrate** — a labeled probe split (the enrolled users plus a
//!    stranger) sets the acceptance threshold at a target false-accept
//!    rate via the gp-eval ROC.
//! 3. **Identify** — an enrolled user replaying their recording is
//!    identified within the threshold; the stranger is rejected
//!    open-set ("nobody I know"), not misattributed.
//!
//! The gallery persists through the store's artifact registry, and the
//! `store.*` telemetry rides the same wire as the serving metrics.
//!
//! ```sh
//! cargo run --release --example enroll_identify
//! ```

use gestureprint::datasets::{presets, Scale};
use gestureprint::radar::Environment;
use gestureprint::serve::{ServeConfig, ServeEngine, SessionMode};
use gestureprint::store::{IdentityStore, RegistryConfig};
use gp_net::{IdentityOutcome, NetClient, NetConfig, NetListener, NetServer};
use gp_testkit::{stream_capture, toy_system, GestureStream};
use std::sync::Arc;

const MAX_FRAME: usize = 1 << 20;
/// Target false-accept rate for threshold calibration.
const TARGET_FAR: f64 = 0.05;

/// One single-gesture recording by cohort user `user` — one gesture per
/// stream keeps every embedding in one identifier's fusion space.
fn recording(user: usize, seed: u64) -> GestureStream {
    stream_capture(
        &presets::gestureprint(Environment::Office, Scale::Small),
        user,
        &[12],
        seed,
    )
}

/// Streams a recording over an established client connection and
/// returns the session report from a graceful close.
fn stream_over(mut client: NetClient, stream: &GestureStream) -> gp_net::SessionReport {
    for frame in &stream.frames {
        client.send_frame(frame).expect("send frame");
    }
    client.close().expect("graceful close")
}

/// Serve-path embeddings for probe streams: each stream is enrolled
/// into a scratch store by an in-process engine, and its template
/// centroid *is* the embedding the socket server would compute.
fn serve_embeddings(dir: &std::path::Path, streams: &[&GestureStream]) -> Vec<Vec<f32>> {
    let scratch =
        Arc::new(IdentityStore::open(dir, RegistryConfig::default()).expect("open scratch store"));
    let engine = ServeEngine::with_store(toy_system(), ServeConfig::default(), scratch.clone());
    for (k, stream) in streams.iter().enumerate() {
        let session = engine.open_session();
        assert!(engine.set_session_mode(session, SessionMode::Enroll(format!("probe-{k}"))));
        for frame in &stream.frames {
            engine.push_frame(session, frame.clone());
        }
        engine.close_session(session);
    }
    engine.drain();
    let gallery = scratch.gallery_snapshot();
    (0..streams.len())
        .map(|k| {
            gallery
                .entry(&format!("probe-{k}"))
                .expect("probe enrolled")
                .centroid()
        })
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("gp-enroll-identify-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("scratch")).expect("store dirs");

    let store = Arc::new(
        IdentityStore::open(dir.join("store"), RegistryConfig::default())
            .expect("open identity store"),
    );
    let engine = Arc::new(ServeEngine::with_store(
        toy_system(),
        ServeConfig::default(),
        store.clone(),
    ));
    let listener = NetListener::bind_tcp("127.0.0.1:0").expect("bind loopback");
    let server =
        NetServer::spawn(engine.clone(), listener, NetConfig::default()).expect("spawn server");
    let addr = server.local_addr().expect("tcp address");
    println!(
        "gp-net identity server on {addr} (gallery at {})\n",
        dir.join("store").display()
    );

    // ── Phase 1: enrollment over the wire ────────────────────────────
    let users = [("alice", 0usize, 21u64), ("bob", 1, 22)];
    let mut streams = Vec::new();
    for &(name, user, seed) in &users {
        let stream = recording(user, seed);
        let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
        client.enroll(name).expect("enroll ack");
        let report = stream_over(client, &stream);
        for r in &report.results {
            if let Some(IdentityOutcome::Enrolled { user, samples }) = &r.identity {
                println!(
                    "enroll {user}: frames [{:>3}, {:>3}) → gesture {} ({samples} template sample{})",
                    r.start,
                    r.end,
                    r.gesture,
                    if *samples == 1 { "" } else { "s" },
                );
            }
        }
        assert_eq!(report.ledger.enrolled, report.results.len() as u64);
        streams.push(stream);
    }
    println!(
        "gallery: {} users, {} samples, threshold {} (uncalibrated = closed-set)\n",
        store.users(),
        store.samples(),
        store.threshold(),
    );

    // ── Phase 2: threshold calibration at a target FAR ───────────────
    // Probe split: the enrolled users' own recordings (genuine) plus
    // two recordings by mallory, who never enrolled (impostor).
    let mallory = [recording(2, 23), recording(2, 29)];
    let probe_streams: Vec<&GestureStream> = streams.iter().chain(mallory.iter()).collect();
    let embeddings = serve_embeddings(&dir.join("scratch"), &probe_streams);
    let probes: Vec<(String, Vec<f32>)> = embeddings
        .iter()
        .enumerate()
        .map(|(k, e)| {
            let label = users.get(k).map_or("mallory", |(name, ..)| name);
            (label.to_string(), e.clone())
        })
        .collect();
    let summary = store.calibrate("enroll-identify-demo", &probes, TARGET_FAR);
    println!(
        "calibrated on {} probes ({} genuine / {} impostor pairs): \
         threshold {:.4} at FAR ≤ {TARGET_FAR} (EER {:.3})\n",
        probes.len(),
        summary.positives,
        summary.negatives,
        store.threshold(),
        summary.eer,
    );

    // ── Phase 3: open-set identification over the wire ───────────────
    for (&(name, ..), stream) in users.iter().zip(&streams) {
        let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
        client.identify_mode().expect("switch to identify");
        let report = stream_over(client, stream);
        for r in &report.results {
            match &r.identity {
                Some(IdentityOutcome::Identified { user, distance }) => {
                    println!(
                        "identify: gesture {} by {user} (distance {distance:.4})",
                        r.gesture
                    );
                    assert_eq!(user, name, "an enrolled user must match their template");
                }
                other => panic!("{name} must be identified, got {other:?}"),
            }
        }
    }

    let mut client = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect");
    client.identify_mode().expect("switch to identify");
    let report = stream_over(client, &mallory[1]);
    for r in &report.results {
        match &r.identity {
            Some(IdentityOutcome::Unknown { distance }) => {
                println!(
                    "identify: gesture {} by UNKNOWN (nearest distance {:.4} > threshold)",
                    r.gesture,
                    distance.expect("populated gallery reports the nearest distance"),
                );
            }
            other => panic!("a stranger must be rejected open-set, got {other:?}"),
        }
    }

    // The calibrated gallery outlives the process: one publish writes a
    // versioned `gestureprint.gallery` artifact through the registry
    // (atomic tempfile + rename, versioned retention).
    let version = store.persist().expect("persist gallery");
    println!("\ngallery persisted as artifact version {version}");

    // ── Store telemetry rides the same wire as serving metrics ───────
    let mut observer = NetClient::connect_tcp(addr, MAX_FRAME).expect("connect observer");
    let snapshot = observer.query_stats().expect("stats over the wire");
    observer.close().expect("close observer");
    println!("\nidentity-store metrics (queried over the socket):");
    for (name, value) in snapshot
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("store."))
    {
        println!("  {name:<28} {value}");
    }
    for (name, value) in snapshot
        .gauges
        .iter()
        .filter(|(n, _)| n.starts_with("store."))
    {
        println!("  {name:<28} {value}");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("\ndone: enrolled → calibrated → identified, stranger rejected open-set");
}
