//! Range-Doppler serving demo: the backend-agnostic engine end to end.
//!
//! Trains the conv/LSTM RdNet on *synthesized* range-Doppler frames
//! (the same kinematic ground truth that drives the point-cloud
//! simulator), then serves two workloads through one `ServeEngine`:
//!
//! 1. **Pure RD sessions** — held-out captures stream frame-by-frame
//!    through sessions opened with `open_rd_session`; the online CFAR
//!    segmenter detects each gesture burst and the RD system classifies
//!    it (which gesture, which user).
//! 2. **A hybrid session** — paired point+RD pushes with
//!    `rd_fallback_min_points` set: when the closed point-cloud segment
//!    is too sparse to trust, the engine re-routes the aligned RD
//!    window to the RD backend instead of dropping the gesture.
//!
//! Prints per-capture predictions against ground truth, the
//! `serve.rd.*` counters, and the per-stage latency breakdown.
//!
//! ```sh
//! cargo run --release --example rd_serve
//! ```

use gestureprint::core::{
    GesturePrint, GesturePrintConfig, IdentificationMode, ModelKind, TrainConfig,
};
use gestureprint::pointcloud::{Point, PointCloud, Vec3};
use gestureprint::radar::Frame;
use gestureprint::rd::{RdConfig, RdFrame, RdLabeledSample};
use gestureprint::serve::{SensingBackend, ServeConfig, ServeEngine};
use gp_testkit::{rd_capture, rd_sample, toy_system};

/// The demo cohort: 'push' (12) is strongly radial, 'wave' (3) sweeps
/// laterally — distinct Doppler signatures, remapped to classes 0/1.
const GESTURES: [usize; 2] = [12, 3];
const USERS: usize = 2;
const TRAIN_REPS: u64 = 4;
const HELD_OUT_REPS: [u64; 2] = [20, 21];

fn main() {
    // 1. Train the RD system on synthesized captures: every training
    //    sample is the dominant CFAR segment of a full synthetic
    //    range-Doppler recording.
    let mut samples: Vec<RdLabeledSample> = Vec::new();
    for (class, &gesture) in GESTURES.iter().enumerate() {
        for user in 0..USERS {
            for rep in 0..TRAIN_REPS {
                let mut sample = rd_sample(user, gesture, rep);
                sample.gesture = class;
                samples.push(sample);
            }
        }
    }
    println!(
        "training RdNet on {} synthesized range-Doppler segments \
         ({} gestures × {USERS} users × {TRAIN_REPS} reps)...",
        samples.len(),
        GESTURES.len(),
    );
    let refs: Vec<&RdLabeledSample> = samples.iter().collect();
    let rd_system = GesturePrint::train_rd(
        &refs,
        GESTURES.len(),
        USERS,
        &GesturePrintConfig {
            mode: IdentificationMode::Serialized,
            train: TrainConfig {
                model: ModelKind::RdNet,
                epochs: 12,
                learning_rate: 5e-3,
                augment: None,
                ..TrainConfig::default()
            },
            threads: 0,
        },
    );

    // 2. Serve held-out captures through pure RD sessions. The engine's
    //    primary system stays point-cloud; the RD system is attached
    //    alongside it and sessions declare their modality at open.
    let engine = ServeEngine::new(
        toy_system(),
        ServeConfig {
            workers: 0,
            max_batch: 4,
            rd_fallback_min_points: Some(400),
            ..ServeConfig::default()
        },
    )
    .with_rd_system(rd_system);

    println!("\nheld-out captures through RD sessions:");
    let mut scored = 0usize;
    let mut gesture_hits = 0usize;
    let mut user_hits = 0usize;
    for (class, &gesture) in GESTURES.iter().enumerate() {
        for user in 0..USERS {
            for rep in HELD_OUT_REPS {
                let (_, frames) = rd_capture(user, gesture, rep);
                let session = engine.open_rd_session();
                for frame in &frames {
                    engine.push_rd_frame(session, frame.clone());
                }
                engine.close_session(session);
                let events = engine.drain();
                // The longest detected segment is the gesture burst.
                let Some(event) = events
                    .iter()
                    .filter(|e| e.session == session)
                    .max_by_key(|e| e.segment.len())
                else {
                    println!("  {session}: no segment detected");
                    continue;
                };
                scored += 1;
                gesture_hits += usize::from(event.inference.gesture == class);
                user_hits += usize::from(event.inference.user == user);
                println!(
                    "  {session}: frames [{:>2}, {:>2}) via {:?} → gesture {} user {} \
                     (truth: gesture {class} user {user})",
                    event.segment.start,
                    event.segment.end,
                    event.backend,
                    event.inference.gesture,
                    event.inference.user,
                );
            }
        }
    }
    println!("accuracy: gestures {gesture_hits}/{scored}, users {user_hits}/{scored}");

    // 3. Hybrid session: paired point+RD pushes. The burst's assembled
    //    segment aggregates ~350 detections — below the 400-point
    //    sparsity threshold configured above — so the engine distrusts
    //    the point segment and re-routes the aligned RD window.
    println!("\nhybrid session (sparse point clouds, RD fallback):");
    let cfg = RdConfig::default();
    let session = engine.open_session();
    for i in 0..70usize {
        let burst = (20..45).contains(&i);
        let cloud: PointCloud = (0..if burst { 14 } else { 1 })
            .map(|k| Point::new(Vec3::new(k as f64 * 0.05, 1.2, 1.0), 0.4, 15.0))
            .collect();
        let mut rd = RdFrame::zeros(&cfg, i as f64 * 0.1);
        if burst {
            rd.power[12 * cfg.range_bins + 36 + i % 4] = 45.0;
            rd.power[13 * cfg.range_bins + 36 + i % 4] = 25.0;
        }
        engine.push_paired_frame(session, Frame::new(i as f64 * 0.1, cloud), rd);
    }
    engine.close_session(session);
    for event in engine.drain().iter().filter(|e| e.session == session) {
        println!(
            "  {session}: frames [{:>2}, {:>2}) via {:?} → gesture {} user {}{}",
            event.segment.start,
            event.segment.end,
            event.backend,
            event.inference.gesture,
            event.inference.user,
            if event.backend == SensingBackend::RangeDoppler {
                "  (point segment too sparse — served by the RD backend)"
            } else {
                ""
            },
        );
    }

    // 4. The RD counters and the shared per-stage latency breakdown.
    if let Some(registry) = engine.registry() {
        println!("\nrd counters:");
        for name in [
            "serve.rd.frames",
            "serve.rd.segments",
            "serve.rd.results",
            "serve.rd.fallback",
        ] {
            println!("  {name} = {}", registry.counter(name).get());
        }
    }
    if let Some(snapshot) = engine.telemetry_snapshot() {
        println!("\nper-stage latency breakdown:");
        print!("{}", snapshot.render_table("serve.stage."));
    }
}
