//! # GesturePrint
//!
//! A Rust reproduction of **"GesturePrint: Enabling User Identification for
//! mmWave-Based Gesture Recognition Systems"** (ICDCS 2024).
//!
//! GesturePrint augments an mmWave-radar gesture recognition system with
//! *gesture-based user identification*: the same point-cloud sample is
//! classified twice — once to recognise **which gesture** was performed and
//! once to identify **who** performed it — using a shared preprocessing
//! pipeline and the GesIDNet network architecture.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`codec`] | `gp-codec` | self-describing values, strict JSON, `Encode`/`Decode` |
//! | [`dsp`] | `gp-dsp` | FFT, windows, CA-CFAR |
//! | [`pointcloud`] | `gp-pointcloud` | point types, HD/CD/JSD metrics, DBSCAN |
//! | [`kinematics`] | `gp-kinematics` | arm model, gesture trajectories, user biometrics |
//! | [`radar`] | `gp-radar` | FMCW radar simulator |
//! | [`pipeline`] | `gp-pipeline` | segmentation, noise canceling, augmentation |
//! | [`datasets`] | `gp-datasets` | synthetic dataset builders |
//! | [`nn`] | `gp-nn` | tensors, layers, optimizers |
//! | [`models`] | `gp-models` | GesIDNet and baselines |
//! | [`core`] | `gp-core` | end-to-end system (train / infer, serialized & parallel modes, versioned artifacts) |
//! | [`telemetry`] | `gp-telemetry` | metrics registry, mergeable latency histograms, stage spans, versioned snapshots |
//! | [`runtime`] | `gp-runtime` | work-stealing pool, scoped parallel maps, backpressure gate |
//! | [`serve`] | `gp-serve` | streaming multi-session engine, micro-batched execution, per-session admission |
//! | [`net`] | `gp-net` | socket front: framed TCP/UDS streams, reactor, budget-aware backpressure |
//! | [`eval`] | `gp-eval` | accuracy / F1 / AUC / ROC / EER, k-fold, t-SNE |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: synthesise a small
//! multi-user gesture dataset, train GesIDNet for recognition and
//! identification, and evaluate both tasks.

pub use gestureprint_core as core;
pub use gp_codec as codec;
pub use gp_datasets as datasets;
pub use gp_dsp as dsp;
pub use gp_eval as eval;
pub use gp_kinematics as kinematics;
pub use gp_models as models;
pub use gp_net as net;
pub use gp_nn as nn;
pub use gp_pipeline as pipeline;
pub use gp_pointcloud as pointcloud;
pub use gp_radar as radar;
pub use gp_rd as rd;
pub use gp_runtime as runtime;
pub use gp_serve as serve;
pub use gp_store as store;
pub use gp_telemetry as telemetry;
